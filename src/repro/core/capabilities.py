"""Engine capability negotiation: the one ladder, resolved explicitly.

Six engines implement σ/δ (naive → incremental → vectorized → parallel
→ batched → remote), each trading generality for speed — the remote
rung additionally trading locality: it shards destination columns over
TCP workers and is only eligible when the caller configured a
transport.  Before this module the
ladder lived as ad-hoc ``if supports_…: … else fall back`` chains
duplicated across ``iterate_sigma``, ``delta_run``,
``absolute_convergence_experiment``, the simulator's σ-stability check
and the CLI — and every chain fell back *silently*, so a non-finite
algebra requested with ``engine="parallel"`` quietly degraded to the
incremental engine with no signal anywhere.

This module centralises the negotiation:

* each engine class advertises a :class:`Capabilities` descriptor
  (``requires_finite_algebra``, ``requires_shared_memory``, ``min_n``,
  ``supports_batched_trials``, ``supports_topology_mutation``, …),
  registered under its rung name in :data:`ENGINE_CAPABILITIES`;
* :func:`resolve_engine` walks the ladder from the requested rung (or
  from the top, for ``"auto"``) and returns an :class:`EngineResolution`
  recording the chosen rung **and a machine-readable reason chain** —
  one :class:`SkippedRung` with a stable ``code`` per rung it skipped;
* every skipped rung is logged as one structured line on the ``repro``
  logger (``repro.engine``), so fallback is observable without being
  noisy (INFO level — silent by default, one ``logging.basicConfig``
  away from visible);
* ``strict=True`` raises :class:`UnsupportedEngineError` (carrying the
  resolution) instead of falling back — the mode RPC sharding and
  recorded experiments need, where a silent rung change is an
  operational hazard.

Check order inside a rung is part of the contract (tests assert reason
chains exactly): **capability** (``no-finite-encoding``,
``no-shared-memory``, ``no-remote-endpoints``) → **policy**
(``single-stability-check``, ``keep-history``, ``unbounded-schedule``,
``literal-history``) → **sizing** (``auto-single-cpu``, ``below-min-n``,
``workers-lt-2``).  The first failing check names the rung's skip
reason.

The resolver is consumed by :class:`repro.session.RoutingSession` (the
public facade) and by the legacy selector shims, so every entry point
negotiates identically.
"""

from __future__ import annotations

import logging
import os
import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: structured fallback log lines land here — a child of the ``repro``
#: logger, so ``logging.getLogger("repro").setLevel(logging.INFO)``
#: makes every skipped rung visible.
logger = logging.getLogger("repro.engine")

#: the ladder, fastest/most-specialised rung first.  Fallback walks this
#: list downward and stops at ``incremental`` (always capable); the
#: ``naive`` rung is only ever *chosen*, never fallen back to — except
#: by an explicit literal-history (strict δ) request.  The ``remote``
#: rung sits above the walk's auto starting points, so it is only ever
#: reached by an explicit request (a network dependency must be opted
#: into, never inferred).
LADDER = ("remote", "batched", "parallel", "vectorized", "incremental",
          "naive")

#: where ``engine="auto"`` starts the walk, per operation: grids of
#: trials want the batched tensor engine; single runs start at the
#: parallel rung (whose own sizing heuristics decline small problems).
AUTO_START = {"sigma": "parallel", "delta": "parallel", "grid": "batched",
              "stability": "parallel"}

#: valid operations a resolution can be asked for.
OPS = ("sigma", "delta", "grid", "stability")


class UnsupportedEngineError(RuntimeError):
    """Raised by strict resolution when the requested rung cannot run.

    Carries the full :class:`EngineResolution` (``.resolution``) so the
    caller can inspect the machine-readable reason chain.
    """

    def __init__(self, message: str, resolution: "EngineResolution"):
        super().__init__(message)
        self.resolution = resolution


@dataclass(frozen=True)
class Capabilities:
    """What one engine rung needs and what it can do.

    Advertised as a ``capabilities`` class attribute by the engine
    classes (:class:`~repro.core.vectorized.VectorizedEngine`,
    :class:`~repro.core.parallel.ParallelVectorizedEngine`,
    :class:`~repro.core.vectorized.BatchedVectorizedEngine`); the
    function-implemented rungs (``naive``, ``incremental``) register
    descriptors directly below.
    """

    rung: str
    #: needs an :class:`~repro.algebras.base.AlgebraEncoding` (finite
    #: carrier, injective preference keys) plus numpy.
    requires_finite_algebra: bool = False
    #: needs ``multiprocessing.shared_memory`` and a process start method.
    requires_shared_memory: bool = False
    #: needs an explicitly configured remote transport (worker
    #: endpoints, or a loopback subprocess count); without one the rung
    #: is skipped with ``no-remote-endpoints``.
    requires_remote_endpoints: bool = False
    #: auto-mode problem-size floor (0 = none); explicit ``workers``
    #: requests override it, capability checks never.
    min_n: int = 0
    #: minimum effective worker count (0 = not pool-based).
    min_workers: int = 0
    #: can stack many (schedule, start) trials into one workload.
    supports_batched_trials: bool = False
    #: safe to mutate the topology mid-run (``set_edge``/``remove_edge``
    #: invalidate this rung's caches).  Every in-process rung supports
    #: it; the remote rung declines — its snapshot is shipped to the
    #: workers once, and the session rebuilds the engine instead.
    supports_topology_mutation: bool = True
    #: δ: can serve a schedule with no declared staleness bound.
    supports_unbounded_schedules: bool = True
    #: δ: can return the full decoded state history (``keep_history``).
    supports_kept_history: bool = True
    #: runs the literal paper recursion (strict mode).
    supports_literal_history: bool = False
    #: worth dispatching for a single σ-stability check (the simulator's
    #: per-run verdict) — batching needs a grid to amortise over.
    supports_single_stability_check: bool = True


#: rung name → descriptor.  The two function-implemented rungs register
#: here; the engine classes register on import (see resolve_engine's
#: lazy import, which guarantees registration before any negotiation).
ENGINE_CAPABILITIES: Dict[str, Capabilities] = {}


def register_engine(caps: Capabilities) -> Capabilities:
    """Register (and return) one rung's descriptor."""
    ENGINE_CAPABILITIES[caps.rung] = caps
    return caps


register_engine(Capabilities(
    rung="naive",
    supports_literal_history=True,
))
register_engine(Capabilities(
    rung="incremental",
))


#: stable vocabulary for degraded-mode recovery events (asserted by the
#: chaos suite, surfaced on session reports next to the wire stats):
#: ``worker-respawned`` — a dead loopback worker subprocess was replaced
#: and the shard reloaded; ``worker-reconnected`` — a flaky endpoint was
#: reconnected without losing it; ``reshard-after-loss`` — an endpoint
#: stayed unreachable and its columns were re-sharded onto survivors;
#: ``endpoint-probation`` — a dead endpoint was parked with exponential
#: re-probe backoff instead of being retried in the hot path;
#: ``endpoint-rejoined`` — a parked endpoint answered its probation
#: probe and was re-admitted (the next pool build re-shards its columns
#: back towards the original layout).
DEGRADED_CODES = ("worker-respawned", "worker-reconnected",
                  "reshard-after-loss", "endpoint-probation",
                  "endpoint-rejoined")


@dataclass(frozen=True)
class DegradedEvent:
    """One recovery the remote supervisor performed instead of raising.

    The machine-readable cousin of :class:`SkippedRung`, for runtime
    faults rather than negotiation: ``code`` is from
    :data:`DEGRADED_CODES`, ``shard`` the failed shard index, ``detail``
    the human sentence, and ``heal_ms`` the wall-clock cost of the
    recovery (pool rebuild + state reload) — the benchmark harness's
    time-to-heal metric.
    """

    code: str
    shard: Optional[int] = None
    detail: str = ""
    heal_ms: Optional[float] = None

    def as_dict(self) -> dict:
        out = {"code": self.code, "shard": self.shard,
               "detail": self.detail}
        if self.heal_ms is not None:
            out["heal_ms"] = round(self.heal_ms, 2)
        return out


@dataclass(frozen=True)
class SkippedRung:
    """One rung the resolver walked past, with a machine-readable reason.

    ``code`` is stable vocabulary (asserted exactly by the test suite):
    ``no-finite-encoding``, ``no-shared-memory``,
    ``no-remote-endpoints``, ``single-stability-check``,
    ``keep-history``, ``unbounded-schedule``, ``literal-history``,
    ``auto-single-cpu``, ``below-min-n``, ``workers-lt-2``.  ``detail``
    is the human sentence.
    """

    rung: str
    code: str
    detail: str


@dataclass(frozen=True)
class EngineResolution:
    """The outcome of one capability negotiation.

    ``requested`` is what the caller asked for (``"auto"`` included),
    ``chosen`` the rung that will actually run, ``skipped`` the reason
    chain for every rung walked past (empty = no fallback), and
    ``workers`` the resolved pool/shard size when the parallel or
    remote rung was chosen.
    """

    requested: str
    op: str
    chosen: str
    skipped: Tuple[SkippedRung, ...] = ()
    workers: Optional[int] = None

    @property
    def fell_back(self) -> bool:
        """True when the chosen rung differs from a concrete request."""
        return bool(self.skipped)

    def reason_codes(self) -> List[Tuple[str, str]]:
        """``[(rung, code)]`` — the chain in machine-comparable form."""
        return [(s.rung, s.code) for s in self.skipped]

    def explain(self) -> str:
        """Human-readable negotiation summary (used by the CLI)."""
        head = self.chosen
        if self.workers:
            head += f" ({self.workers} workers)"
        if not self.skipped:
            return head
        chain = "; ".join(f"{s.rung} skipped [{s.code}]: {s.detail}"
                          for s in self.skipped)
        return f"{head} — {chain}"


def warn_deprecated(old: str, new: str) -> None:
    """One :class:`DeprecationWarning` pointing a legacy free function
    at its :class:`~repro.session.RoutingSession` replacement."""
    warnings.warn(
        f"{old} is deprecated; use {new} "
        "(see repro.session.RoutingSession)",
        DeprecationWarning, stacklevel=3)


# ----------------------------------------------------------------------
# Resolution
# ----------------------------------------------------------------------


def _skip_reason(caps: Capabilities, network, op: str, workers,
                 keep_history: bool, bounded: Optional[bool],
                 remote=None
                 ) -> Tuple[Optional[SkippedRung], Optional[int]]:
    """First failing check for ``caps``'s rung, or ``(None, pool size)``.

    Check order — capability, then policy, then sizing — is part of the
    negotiation contract (see the module docstring).
    """
    rung = caps.rung
    alg = network.algebra

    # -- capability -----------------------------------------------------
    if caps.requires_finite_algebra:
        from .vectorized import supports_vectorized
        if not supports_vectorized(alg):
            return SkippedRung(
                rung, "no-finite-encoding",
                f"{alg.name} has no finite int encoding "
                "(or numpy is unavailable)"), None
    if caps.requires_shared_memory:
        from .parallel import _mp_context
        if _mp_context() is None:
            return SkippedRung(
                rung, "no-shared-memory",
                "multiprocessing shared memory is not supported on this "
                "platform"), None
    if caps.requires_remote_endpoints and not remote:
        return SkippedRung(
            rung, "no-remote-endpoints",
            "no remote transport configured: pass worker endpoints or a "
            "loopback worker count (EngineSpec.endpoints / "
            "EngineSpec.remote_workers)"), None

    # -- policy ---------------------------------------------------------
    if op == "stability" and not caps.supports_single_stability_check:
        return SkippedRung(
            rung, "single-stability-check",
            "batching amortises over a grid of trials; a lone "
            "σ-stability check falls one rung down"), None
    if op in ("delta", "grid"):
        if keep_history and not caps.supports_kept_history:
            return SkippedRung(
                rung, "keep-history",
                "full decoded state histories cannot live in this "
                "rung's bounded ring"), None
        if bounded is False and not caps.supports_unbounded_schedules:
            return SkippedRung(
                rung, "unbounded-schedule",
                "schedule declares no staleness bound "
                "(max_read_back() is None); a fixed history ring would "
                "be unsound"), None

    # -- sizing ---------------------------------------------------------
    if caps.requires_remote_endpoints:
        n = network.n
        if n < caps.min_n:
            return SkippedRung(
                rung, "below-min-n",
                f"n={n} < min_n={caps.min_n}: wire fan-out cannot pay at "
                "this size (gate applies even to explicit requests)"), None
        try:
            count = len(remote)
        except TypeError:
            count = int(remote)
        effective = min(count, n)
        if effective < caps.min_workers:
            return SkippedRung(
                rung, "workers-lt-2",
                f"remote transport resolved to {effective} shard(s) < "
                f"{caps.min_workers}"), None
        return None, effective
    if caps.min_workers:
        n = network.n
        if workers is None:
            cpus = os.cpu_count() or 1
            if cpus < 2:
                return SkippedRung(
                    rung, "auto-single-cpu",
                    f"auto mode on a single-CPU host "
                    f"(os.cpu_count()={cpus})"), None
            if n < caps.min_n:
                return SkippedRung(
                    rung, "below-min-n",
                    f"auto mode declines n={n} < min_n={caps.min_n} "
                    "(process fan-out would not pay)"), None
            workers = cpus
        effective = min(int(workers), n)
        if effective < caps.min_workers:
            return SkippedRung(
                rung, "workers-lt-2",
                f"workers resolved to {effective} < "
                f"{caps.min_workers}"), None
        return None, effective
    return None, None


def resolve_engine(network, requested: str = "auto", op: str = "sigma", *,
                   workers: Optional[int] = None, strict: bool = False,
                   keep_history: bool = False, literal: bool = False,
                   schedule=None, remote=None) -> EngineResolution:
    """Negotiate the engine rung for one operation on one network.

    ``requested`` is a rung name or ``"auto"``; ``op`` one of
    :data:`OPS`.  ``schedule`` (δ only) supplies the staleness bound;
    ``keep_history`` and ``literal`` are the δ history policies
    (``literal`` — the strict paper recursion — always resolves to the
    naive rung, which is the only one that retains it).  ``remote`` is
    the remote rung's transport: a sequence of worker endpoints or a
    loopback subprocess count; without one the remote rung is skipped
    with ``no-remote-endpoints``.

    Returns an :class:`EngineResolution`; with ``strict=True`` a
    concrete request that cannot run raises
    :class:`UnsupportedEngineError` instead of falling back (``"auto"``
    never raises — the incremental rung is always capable).

    Every skipped rung is logged as one structured line on the
    ``repro.engine`` logger.
    """
    # engine classes register their Capabilities on import
    from . import parallel as _parallel  # noqa: F401
    from . import remote as _remote  # noqa: F401
    from . import vectorized as _vectorized  # noqa: F401

    if op not in OPS:
        raise ValueError(f"unknown engine op {op!r}; choose from {OPS}")
    if requested != "auto" and requested not in LADDER:
        raise ValueError(f"unknown engine {requested!r}")
    start = AUTO_START[op] if requested == "auto" else requested
    bounded: Optional[bool] = None
    if schedule is not None:
        bounded = schedule.max_read_back() is not None

    skipped: List[SkippedRung] = []
    chosen = start
    resolved_workers: Optional[int] = None
    for rung in LADDER[LADDER.index(start):]:
        caps = ENGINE_CAPABILITIES[rung]
        if literal and not caps.supports_literal_history:
            skip = SkippedRung(
                rung, "literal-history",
                "strict literal recursion requested; only the naive "
                "rung retains the paper recursion")
            reason_workers = None
        else:
            skip, reason_workers = _skip_reason(
                caps, network, op, workers, keep_history, bounded,
                remote=remote)
        if skip is None:
            chosen = rung
            resolved_workers = reason_workers
            break
        skipped.append(skip)
        logger.info(
            "engine-skip rung=%s code=%s op=%s requested=%s algebra=%s "
            "n=%d detail=%s",
            skip.rung, skip.code, op, requested, network.algebra.name,
            network.n, skip.detail)
    else:  # pragma: no cover - the incremental/naive floor always accepts
        raise AssertionError("engine ladder exhausted")

    resolution = EngineResolution(requested, op, chosen, tuple(skipped),
                                  workers=resolved_workers)
    if strict and requested != "auto" and chosen != requested:
        first = skipped[0]
        raise UnsupportedEngineError(
            f"engine {requested!r} cannot run op {op!r} on "
            f"{network.algebra.name} (n={network.n}): "
            f"[{first.code}] {first.detail} "
            f"(strict resolution; would have fallen back to {chosen!r})",
            resolution)
    return resolution
