"""Routing algebras: the algebraic heart of the paper (Section 2.1).

A routing algebra is a tuple ``(S, ⊕, F, 0̄, ∞̄)`` where

* ``S`` is the set of routes,
* ``⊕ : S × S → S`` is the *choice* operator returning the preferred of
  two routes,
* ``F`` is a set of *edge functions* ``f : S → S`` that extend a route
  across an edge (applying policy on the way),
* ``0̄`` is the trivial route (a node's route to itself), and
* ``∞̄`` is the invalid route.

The paper requires ⊕ to be associative, commutative and selective, 0̄ to
be an annihilator for ⊕, ∞̄ to be an identity for ⊕, and ∞̄ to be a fixed
point of every ``f ∈ F`` (Table 1).  Because ⊕ is associative,
commutative and selective, the derived relation

    a ≤ b  ⇔  a ⊕ b = a

is a total order with ``0̄ ≤ a ≤ ∞̄`` for every route ``a``.

This module defines the abstract interface plus the derived-order
helpers.  Nothing here is specific to any concrete algebra; the laws of
Table 1 are *checked*, not assumed, by :mod:`repro.verification`.
"""

from __future__ import annotations

import itertools
from abc import ABC, abstractmethod
from typing import Any, Callable, Iterable, Iterator, List, Optional, Sequence

Route = Any
"""Routes are plain hashable Python values; each algebra picks its own type."""


class UnsupportedAlgebraError(TypeError):
    """An engine or encoding was asked for an algebra it cannot handle.

    Raised e.g. when the vectorized engine is constructed over an
    algebra with an infinite (or non-encodable) carrier.  The public
    engine *selectors* catch the capability check instead and fall back
    to the incremental engine; only direct construction surfaces this.
    """


class EdgeFunction(ABC):
    """An element of ``F``: a function from routes to routes.

    Edge functions are first-class objects (rather than bare callables)
    so that adjacency matrices can display them, verification can sample
    them, and path algebras can attach node metadata to them.
    """

    @abstractmethod
    def __call__(self, route: Route) -> Route:
        """Extend ``route`` across this edge, applying policy."""

    def describe(self) -> str:
        """Human-readable description used in matrix pretty-printers."""
        return repr(self)


class FunctionEdge(EdgeFunction):
    """Wrap an arbitrary callable as an :class:`EdgeFunction`."""

    def __init__(self, fn: Callable[[Route], Route], name: str = "f"):
        self._fn = fn
        self._name = name

    def __call__(self, route: Route) -> Route:
        return self._fn(route)

    def __repr__(self) -> str:
        return f"FunctionEdge({self._name})"


class ConstantEdge(EdgeFunction):
    """The constant function ``f(a) = c``.

    With ``c = ∞̄`` this is the representation of a *missing* edge
    (Section 2.2: "Missing edges can be represented by the constant
    function f(a) = ∞").
    """

    def __init__(self, value: Route):
        self.value = value

    def __call__(self, route: Route) -> Route:
        return self.value

    def __repr__(self) -> str:
        return f"ConstantEdge({self.value!r})"


class ComposedEdge(EdgeFunction):
    """Function composition ``(f ∘ g)(a) = f(g(a))``.

    Composition is how multi-hop policy chains arise; it is also used by
    tests to check that increasing functions compose to increasing
    functions.
    """

    def __init__(self, outer: EdgeFunction, inner: EdgeFunction):
        self.outer = outer
        self.inner = inner

    def __call__(self, route: Route) -> Route:
        return self.outer(self.inner(route))

    def __repr__(self) -> str:
        return f"ComposedEdge({self.outer!r}, {self.inner!r})"


class RoutingAlgebra(ABC):
    """Abstract base class for routing algebras (Definition 1).

    Concrete algebras implement :meth:`choice`, :attr:`trivial`,
    :attr:`invalid` and (for verification and ultrametric construction)
    the sampling / enumeration hooks.

    The framework never assumes any law holds; laws are validated by
    :func:`repro.verification.verify_algebra`.  The convergence theorems
    (:mod:`repro.analysis`) state explicitly which laws they need.
    """

    #: Human-readable algebra name, used in reports and benchmark tables.
    name: str = "routing-algebra"

    #: True when ``S`` is finite and :meth:`routes` enumerates it.
    is_finite: bool = False

    # ------------------------------------------------------------------
    # The algebra proper
    # ------------------------------------------------------------------

    @property
    @abstractmethod
    def trivial(self) -> Route:
        """The trivial route 0̄ — a node's route to itself; ⊕-annihilator."""

    @property
    @abstractmethod
    def invalid(self) -> Route:
        """The invalid route ∞̄ — ⊕-identity and fixed point of every f."""

    @abstractmethod
    def choice(self, a: Route, b: Route) -> Route:
        """The ⊕ operator: return the preferred of ``a`` and ``b``."""

    # ------------------------------------------------------------------
    # Derived order (Section 2.1):  a ≤ b  ⇔  a ⊕ b = a
    # ------------------------------------------------------------------

    def equal(self, a: Route, b: Route) -> bool:
        """Route equality.  Default is ``==``; override for quotients."""
        return a == b

    def leq(self, a: Route, b: Route) -> bool:
        """``a ≤ b`` iff ``a ⊕ b = a`` (a is at least as preferred)."""
        return self.equal(self.choice(a, b), a)

    def lt(self, a: Route, b: Route) -> bool:
        """``a < b`` iff ``a ≤ b`` and ``a ≠ b``."""
        return self.leq(a, b) and not self.equal(a, b)

    def best(self, routes: Iterable[Route]) -> Route:
        """Fold ⊕ over ``routes``; the fold of the empty set is ∞̄.

        This is the big-⊕ used in the definition of σ.
        """
        acc = self.invalid
        for r in routes:
            acc = self.choice(acc, r)
        return acc

    def is_valid(self, route: Route) -> bool:
        """True when ``route`` is not the invalid route ∞̄."""
        return not self.equal(route, self.invalid)

    # ------------------------------------------------------------------
    # Enumeration & sampling hooks (verification / ultrametric support)
    # ------------------------------------------------------------------

    def routes(self) -> Iterator[Route]:
        """Enumerate ``S`` for finite algebras.

        Required when :attr:`is_finite` is True — the distance-vector
        ultrametric of Section 4.1 needs the full carrier to compute
        route heights.
        """
        raise NotImplementedError(
            f"{self.name}: route enumeration unavailable (infinite carrier?)"
        )

    def sample_route(self, rng) -> Route:
        """Draw a pseudo-random route; used by sampled law verification.

        ``rng`` is a :class:`random.Random`.  Finite algebras get a
        default implementation via :meth:`routes`.
        """
        if self.is_finite:
            universe = list(self.routes())
            return universe[rng.randrange(len(universe))]
        raise NotImplementedError(f"{self.name}: no route sampler defined")

    def sample_edge_function(self, rng) -> EdgeFunction:
        """Draw a pseudo-random element of ``F`` for law verification."""
        raise NotImplementedError(f"{self.name}: no edge-function sampler defined")

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------

    def sort_routes(self, routes: Sequence[Route]) -> List[Route]:
        """Sort routes from most preferred to least via repeated ⊕.

        Selection sort using only ⊕; O(k²) but independent of any
        numeric key, so it works for every algebra.  Mostly used by
        reports and the height computation.
        """
        remaining = list(routes)
        ordered: List[Route] = []
        while remaining:
            top = self.best(remaining)
            # remove a single occurrence of the ⊕-minimum
            for idx, r in enumerate(remaining):
                if self.equal(r, top):
                    ordered.append(remaining.pop(idx))
                    break
            else:  # pragma: no cover - defensive: ⊕ not selective
                raise ValueError(
                    f"{self.name}: choice() returned a route not in the input; "
                    "⊕ is not selective"
                )
        return ordered


class PathAlgebra(RoutingAlgebra):
    """A routing algebra equipped with a ``path`` projection (Definition 14).

    ``path(r)`` returns the simple path the route was generated along, or
    the sentinel :data:`repro.core.paths.BOTTOM` (⊥) for the invalid
    route.  The laws P1–P3 relating ``path`` to the algebra are checked
    by :func:`repro.verification.verify_path_algebra`.

    Paths are tuples of node ids ``(v0, v1, ..., vk)`` read source →
    destination; the empty tuple ``()`` is the paper's empty path ``[]``
    (the path of the trivial route).  See :mod:`repro.core.paths`.
    """

    @abstractmethod
    def path(self, route: Route):
        """Project the simple path a route was generated along (or ⊥)."""

    def is_consistent(self, route: Route, network) -> bool:
        """Definition 15: ``r`` is consistent iff ``weight(path(r)) = r``.

        ``network`` supplies the adjacency matrix needed by ``weight``.
        """
        from .paths import weight

        return self.equal(weight(self, network, self.path(route)), route)


def exhaustive_pairs(routes: Sequence[Route]) -> Iterator[tuple]:
    """All ordered pairs of routes — helper for exhaustive law checking."""
    return itertools.product(routes, repeat=2)


def exhaustive_triples(routes: Sequence[Route]) -> Iterator[tuple]:
    """All ordered triples of routes — helper for associativity checks."""
    return itertools.product(routes, repeat=3)
