"""Ultrametrics over routes and states (Sections 3.3, 4.1 and 5.2).

The convergence proof route of the paper (Figure 1) goes

    strictly increasing algebra
      ⇒ ultrametric conditions            (this module, executable)
      ⇒ ACO conditions                    (Üresin & Dubois)
      ⇒ absolute convergence of δ

An *ultrametric* is a distance ``d : S × S → ℕ`` with

* **M1** ``d(x, y) = 0  ⇔  x = y``
* **M2** ``d(x, y) = d(y, x)``
* **M3** ``d(x, z) ≤ max(d(x, y), d(y, z))``  (strong triangle inequality)

Theorem 4 then asks for three properties of the lifted state distance
``D(X, Y) = max_{ij} d(X[i][j], Y[i][j])``:

1. ``D`` is bounded,
2. σ is *strictly contracting on orbits*: ``X ≠ σ(X)`` implies
   ``D(X, σ(X)) > D(σ(X), σ²(X))``,
3. σ is *contracting on its fixed point*: ``X ≠ X*`` implies
   ``D(X*, X) ≥ D(X*, σ(X))``  (the paper notes only the fixed-point
   instance of the contraction property is ever used; Section 4 proves
   the strict version).

Two concrete constructions are provided:

* :class:`DistanceVectorUltrametric` — Section 4.1, for *finite*
  algebras: ``h(x) = |{y : x ≤ y}|`` and
  ``d(x, y) = 0 if x = y else max(h(x), h(y))``.
* :class:`PathVectorUltrametric` — Section 5.2, for path algebras with
  possibly-infinite carriers: consistent routes reuse the finite
  construction on ``S_c`` (``h_c``/``d_c``); inconsistent routes are
  measured by how short their (doomed) path still is
  (``h_i(x) = (n+1) - length(path(x))``, ``d_i = max`` of the heights),
  offset by ``H_c`` so that any inconsistency dominates every
  consistent disagreement.  (Figure 2 shows the structure.)

All axioms and contraction properties are *checkable* here — the
benches validate every lemma of Sections 4–5 on live data.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .algebra import PathAlgebra, Route, RoutingAlgebra
from .paths import BOTTOM, enumerate_consistent_routes, length
from .state import Network, RoutingState
from .synchronous import sigma


class RouteUltrametric:
    """Base class: a distance function over routes with an upper bound."""

    #: Upper bound on d (Definition 13); ``None`` when unbounded.
    bound: Optional[int] = None

    def distance(self, x: Route, y: Route) -> int:
        raise NotImplementedError

    # -- lifting to states (Lemma 3) -----------------------------------

    def state_distance(self, X: RoutingState, Y: RoutingState) -> int:
        """``D(X, Y) = max_{ij} d(X[i][j], Y[i][j])``."""
        if X.n != Y.n:
            raise ValueError("states must have equal dimension")
        return max(
            (self.distance(X.get(i, j), Y.get(i, j))
             for i in range(X.n) for j in range(X.n)),
            default=0,
        )


def route_heights(algebra: RoutingAlgebra,
                  carrier: Sequence[Route]) -> Tuple[Dict[Route, int], int]:
    """Compute ``h(x) = |{y : x ≤ y}|`` over a finite carrier (Section 4.1).

    Returns ``(heights, H)`` where ``H = h(0̄)`` is the maximum height.
    The invalid route gets the minimum height 1 and the trivial route
    the maximum ``H = |carrier|`` — matching
    ``1 = h(∞̄) ≤ h(x) ≤ h(0̄) = H``.

    Because ≤ is a total order (⊕ associative/commutative/selective),
    ``h`` is computed by sorting the carrier by preference once rather
    than comparing all pairs.

    Routes that are equal under the algebra's (possibly quotiented)
    equality are collapsed into one height class — mathematically the
    carrier is a set, and algebras such as lexicographic products or
    path lifts represent the invalid route by several denormalised
    values.
    """
    ordered = algebra.sort_routes(list(carrier))
    # group quotient-equal neighbours (⊕-selection sort emits them
    # consecutively) into classes
    classes: List[List[Route]] = []
    for r in ordered:
        if classes and algebra.equal(classes[-1][0], r):
            classes[-1].append(r)
        else:
            classes.append([r])
    heights: Dict[Route, int] = {}
    total = len(classes)
    for rank, cls in enumerate(classes):  # rank 0 = most preferred class
        for r in cls:
            heights[r] = total - rank
    return heights, total


class DistanceVectorUltrametric(RouteUltrametric):
    """The Section 4.1 ultrametric for finite algebras.

    ``d(x, y) = 0`` when ``x = y`` else ``max(h(x), h(y))`` — the
    distance between two distinct routes grows with how *desirable* the
    better one is, because disagreements about good routes propagate.
    """

    def __init__(self, algebra: RoutingAlgebra,
                 carrier: Optional[Sequence[Route]] = None):
        if carrier is None:
            if not algebra.is_finite:
                raise ValueError(
                    f"{algebra.name} has an infinite carrier; pass an explicit "
                    "finite carrier or use PathVectorUltrametric")
            carrier = list(algebra.routes())
        self.algebra = algebra
        self.heights, self.H = route_heights(algebra, carrier)
        self.bound = self.H

    def height(self, x: Route) -> int:
        try:
            return self.heights[x]
        except (KeyError, TypeError):
            raise KeyError(f"route {x!r} is not in the ultrametric's carrier")

    def distance(self, x: Route, y: Route) -> int:
        if self.algebra.equal(x, y):
            return 0
        return max(self.height(x), self.height(y))


class PathVectorUltrametric(RouteUltrametric):
    """The Section 5.2 ultrametric for (possibly infinite) path algebras.

    Built against a concrete *network* because both the consistent set
    ``S_c`` and the inconsistent height ``h_i`` depend on the topology
    (``S_c`` via ``weight``; ``h_i`` via the node count ``n``).
    """

    def __init__(self, network: Network):
        algebra = network.algebra
        if not isinstance(algebra, PathAlgebra):
            raise TypeError("PathVectorUltrametric requires a PathAlgebra")
        self.network = network
        self.algebra = algebra
        self.n = network.n
        consistent = enumerate_consistent_routes(algebra, network)
        self._consistent = consistent
        self.h_c, self.H_c = route_heights(algebra, consistent)
        self.H_i = self.n + 1
        self.bound = self.H_c + self.H_i

    # -- consistency ----------------------------------------------------

    def is_consistent(self, x: Route) -> bool:
        """Definition 15 membership test: ``weight(path(x)) == x``."""
        return self.algebra.is_consistent(x, self.network)

    # -- heights ----------------------------------------------------------

    def consistent_height(self, x: Route) -> int:
        """``h_c`` — height within the finite poset ``S_c``."""
        for r, h in self.h_c.items():
            if self.algebra.equal(r, x):
                return h
        raise KeyError(f"{x!r} is not a consistent route of this network")

    def inconsistent_height(self, x: Route) -> int:
        """``h_i(x) = 1`` if consistent else ``(n+1) - length(path(x))``.

        Shorter inconsistent paths are *taller*: each σ application
        forces every surviving inconsistent route to extend its path, so
        the shortest inconsistent path length strictly increases — the
        decreasing quantity that drives Lemma 9.
        """
        if self.is_consistent(x):
            return 1
        return (self.n + 1) - length(self.algebra.path(x))

    # -- distance -----------------------------------------------------------

    def distance(self, x: Route, y: Route) -> int:
        if self.algebra.equal(x, y):
            return 0
        if self.is_consistent(x) and self.is_consistent(y):
            return max(self.consistent_height(x), self.consistent_height(y))
        return self.H_c + max(self.inconsistent_height(x),
                              self.inconsistent_height(y))


# ----------------------------------------------------------------------
# Axiom / contraction checkers — the executable lemmas.
# ----------------------------------------------------------------------


@dataclass
class CheckOutcome:
    """Result of a property check with an optional counterexample."""

    name: str
    holds: bool
    cases: int
    counterexample: Optional[tuple] = None

    def __bool__(self) -> bool:
        return self.holds


def check_ultrametric_axioms(metric: RouteUltrametric,
                             routes: Sequence[Route]) -> List[CheckOutcome]:
    """Check M1–M3 over all pairs/triples of ``routes`` (Lemma 5 & §5.2)."""
    eq = metric.algebra.equal
    d = metric.distance
    m1 = CheckOutcome("M1: d(x,y)=0 iff x=y", True, 0)
    m2 = CheckOutcome("M2: d(x,y)=d(y,x)", True, 0)
    m3 = CheckOutcome("M3: d(x,z) <= max(d(x,y),d(y,z))", True, 0)
    for x, y in itertools.product(routes, repeat=2):
        m1.cases += 1
        if (d(x, y) == 0) != eq(x, y):
            m1.holds, m1.counterexample = False, (x, y)
        m2.cases += 1
        if d(x, y) != d(y, x):
            m2.holds, m2.counterexample = False, (x, y)
    for x, y, z in itertools.product(routes, repeat=3):
        m3.cases += 1
        if d(x, z) > max(d(x, y), d(y, z)):
            m3.holds, m3.counterexample = False, (x, y, z)
    return [m1, m2, m3]


def check_bounded(metric: RouteUltrametric,
                  routes: Sequence[Route]) -> CheckOutcome:
    """Definition 13: every observed distance must respect the bound."""
    out = CheckOutcome(f"bounded by {metric.bound}", True, 0)
    if metric.bound is None:
        out.holds = False
        return out
    for x, y in itertools.product(routes, repeat=2):
        out.cases += 1
        if metric.distance(x, y) > metric.bound:
            out.holds, out.counterexample = False, (x, y)
    return out


def check_strictly_contracting(metric: RouteUltrametric, network: Network,
                               states: Sequence[RoutingState]) -> CheckOutcome:
    """Lemma 6: ``X ≠ Y ⇒ D(X, Y) > D(σ(X), σ(Y))`` over state pairs."""
    alg = network.algebra
    out = CheckOutcome("sigma strictly contracting over D", True, 0)
    for X, Y in itertools.combinations(states, 2):
        if X.equals(Y, alg):
            continue
        out.cases += 1
        before = metric.state_distance(X, Y)
        after = metric.state_distance(sigma(network, X), sigma(network, Y))
        if not before > after:
            out.holds, out.counterexample = False, (X, Y, before, after)
    return out


def check_strictly_contracting_on_orbits(metric: RouteUltrametric,
                                         network: Network,
                                         states: Sequence[RoutingState]) -> CheckOutcome:
    """Definition 11 / Lemma 9: ``X ≠ σX ⇒ D(X, σX) > D(σX, σ²X)``."""
    alg = network.algebra
    out = CheckOutcome("sigma strictly contracting on orbits", True, 0)
    for X in states:
        sX = sigma(network, X)
        if X.equals(sX, alg):
            continue
        out.cases += 1
        before = metric.state_distance(X, sX)
        after = metric.state_distance(sX, sigma(network, sX))
        if not before > after:
            out.holds, out.counterexample = False, (X, before, after)
    return out


def check_contracting_on_fixed_point(metric: RouteUltrametric, network: Network,
                                     fixed_point: RoutingState,
                                     states: Sequence[RoutingState],
                                     strict: bool = True) -> CheckOutcome:
    """Definition 12 / Lemma 10: ``X ≠ X* ⇒ D(X*, X) > D(X*, σX)``.

    Set ``strict=False`` for the ≥ form that Theorem 4 minimally needs.
    """
    alg = network.algebra
    name = "sigma strictly contracting on fixed point" if strict else \
        "sigma contracting on fixed point"
    out = CheckOutcome(name, True, 0)
    for X in states:
        if X.equals(fixed_point, alg):
            continue
        out.cases += 1
        before = metric.state_distance(fixed_point, X)
        after = metric.state_distance(fixed_point, sigma(network, X))
        ok = before > after if strict else before >= after
        if not ok:
            out.holds, out.counterexample = False, (X, before, after)
    return out


def theorem4_preconditions(metric: RouteUltrametric, network: Network,
                           states: Sequence[RoutingState],
                           routes: Sequence[Route],
                           fixed_point: Optional[RoutingState] = None
                           ) -> List[CheckOutcome]:
    """Bundle every Theorem-4 precondition check (the Figure 1 arrow (c)).

    ``states``/``routes`` are the sample universes; ``fixed_point`` may
    be omitted, in which case it is computed by iterating σ from the
    first state.
    """
    from .synchronous import iterate_sigma

    checks = check_ultrametric_axioms(metric, routes)
    checks.append(check_bounded(metric, routes))
    checks.append(check_strictly_contracting_on_orbits(metric, network, states))
    if fixed_point is None:
        result = iterate_sigma(network, states[0] if states else
                               RoutingState.identity(network.algebra, network.n))
        fixed_point = result.state if result.converged else None
    if fixed_point is not None:
        checks.append(check_contracting_on_fixed_point(
            metric, network, fixed_point, states, strict=False))
    return checks
