"""The asynchronous operator δ (Section 3.1) and convergence experiments.

Given a schedule ``(α, β)`` and a starting state ``X``, the paper defines

    δ⁰(X)            = X
    δᵗ(X)[i][j]      = ⨁_k A[i][k]( δ^{β(t,i,k)}(X)[k][j] ) ⊕ I[i][j]   if i ∈ α(t)
                     = δ^{t-1}(X)[i][j]                                  otherwise

The recursion is implemented in two forms:

* ``strict=True`` — the *literal* paper recursion
  (:func:`delta_step_literal`): every inactive row is copied, every
  entry of an active row queries β afresh, and the **full** state
  history is retained so β may reach arbitrarily far back.  Kept for
  paper-fidelity tests.
* default — the incremental engine: inactive nodes *share* their row
  objects with the previous state (states are immutable by convention,
  so copying them was pure waste), β is queried once per (t, i, k)
  instead of once per entry, changed-row detection happens during the
  step (no per-step O(n²) ``equals`` scan), each node's activation
  diffs its historic reads against a
  :class:`~repro.core.incremental.DeltaRowCache` of the rows it read
  last time and refolds only the destinations that actually changed,
  and the history lives in a
  :class:`~repro.core.incremental.BoundedHistory` ring buffer sized by
  the schedule's declared maximum read-back
  (:meth:`~repro.core.schedule.Schedule.max_read_back`) — O(window · n²)
  memory instead of O(steps · n²).  Schedules that declare no staleness
  bound keep the full history, as before.  Both forms compute exactly
  the same δᵗ.

``delta_run`` additionally accepts the full engine ladder
(``engine="vectorized"`` / ``"parallel"``, see
:mod:`repro.core.vectorized` and :mod:`repro.core.parallel`) with the
same fallback discipline as :func:`repro.core.synchronous.iterate_sigma`.

Convergence detection
---------------------

Definition 6 quantifies over infinite time, which an experiment cannot.
We use a sound finite criterion for bounded-staleness schedules: if the
state has been constant for a window longer than the schedule's maximum
read-back *and* the current state is σ-stable, every future activation
reads data equal to the current state, so the run has provably reached
its limit.  For schedules without a known staleness bound we fall back
to "stable for `stability_window` consecutive steps and σ-fixed".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from .capabilities import warn_deprecated
from .incremental import BoundedHistory, DeltaRowCache
from .schedule import Schedule
from .state import Network, RoutingState
from .synchronous import is_stable
from .algebra import RoutingAlgebra


@dataclass
class AsyncResult:
    """Outcome of a δ run."""

    converged: bool
    steps: int                        #: total δ steps simulated
    state: RoutingState               #: state at the final step
    converged_at: Optional[int] = None  #: first step from which state stayed fixed
    history: Optional[List[RoutingState]] = field(default=None, repr=False)
    #: number of states the run actually retained in memory (ring-buffer
    #: size for the default engine, steps + 1 for strict/keep_history)
    history_retained: Optional[int] = None

    @property
    def fixed_point(self) -> RoutingState:
        if not self.converged:
            raise ValueError("δ run did not converge; no fixed point")
        return self.state


def delta_step_literal(network: Network, schedule: Schedule,
                       history, t: int) -> RoutingState:
    """The paper's δᵗ recursion, implemented literally (``strict`` mode).

    Copies every inactive row and queries β once per (t, i, k, j) — the
    reference against which :func:`delta_step` is verified.
    """
    alg = network.algebra
    n = network.n
    prev = history[t - 1]
    active = schedule.alpha(t)
    rows = []
    for i in range(n):
        if i not in active:
            rows.append(list(prev.rows[i]))
            continue
        row = []
        in_neighbours = network.neighbours_in(i)
        for j in range(n):
            if i == j:
                row.append(alg.trivial)
                continue
            candidates = []
            for k in in_neighbours:
                src_time = schedule.beta(t, i, k)
                candidates.append(network.edge(i, k)(history[src_time].get(k, j)))
            row.append(alg.best(candidates))
        rows.append(row)
    return RoutingState(rows)


def _delta_step_tracked(network: Network, schedule: Schedule,
                        history, t: int,
                        cache: Optional[DeltaRowCache] = None
                        ) -> Tuple[RoutingState, bool]:
    """Compute ``(δᵗ(X), changed)`` with structural row sharing.

    Inactive nodes keep their previous row *object*; active rows whose
    recomputation leaves every entry equal are shared too.  ``changed``
    reports whether any entry differs from δᵗ⁻¹ — computed during the
    step, so :func:`delta_run` needs no per-step equality scan.
    ``history`` is anything indexable by absolute time (a plain list or
    a :class:`~repro.core.incremental.BoundedHistory`).

    With a :class:`~repro.core.incremental.DeltaRowCache`, an
    activation first diffs the historic rows it is about to read
    against the rows it read last time (object identity skips shared
    rows outright) and refolds **only the destinations whose reads
    changed** — entry ``(i, j)`` depends on the sources' column ``j``
    alone, so untouched destinations provably keep their value.  The
    cache is invalidated wholesale on topology mutation (``sync``).
    """
    alg = network.algebra
    n = network.n
    topo = network.adjacency.topology
    choice, equal = alg.choice, alg.equal
    trivial, invalid = alg.trivial, alg.invalid
    prev = history[t - 1]
    active = schedule.alpha(t)
    beta = schedule.beta
    if cache is not None:
        cache.sync(network.adjacency)
    rows = []
    changed_any = False
    for i in range(n):
        old_row = prev.rows[i]
        if i not in active:
            rows.append(old_row)
            continue
        # β is a deterministic function of (t, i, k): hoist one historic
        # row per in-neighbour instead of re-querying per destination.
        in_edges = topo.in_edges[i]
        src_rows = [history[beta(t, i, k)].rows[k] for (k, _fn) in in_edges]
        new_row = None
        row_changed = False
        cached = cache.get(i) if cache is not None else None
        if cached is not None and cached[1] is old_row and \
                len(cached[0]) == len(src_rows):
            # the previous activation's result still is i's current row,
            # so only destinations whose reads changed can move
            dests = set()
            for new_src, old_src in zip(src_rows, cached[0]):
                if new_src is old_src:
                    continue
                for j in range(n):
                    a, b = new_src[j], old_src[j]
                    if a is not b and not equal(a, b):
                        dests.add(j)
            if dests:
                sources = [(fn, r) for (_k, fn), r in zip(in_edges, src_rows)]
                new_row = list(old_row)
                for j in dests:
                    if i == j:
                        new = trivial
                    else:
                        new = invalid
                        for fn, src_row in sources:
                            new = choice(new, fn(src_row[j]))
                    if not equal(new, old_row[j]):
                        row_changed = True
                    new_row[j] = new
        else:
            # no usable memo: full refold (also the cache-less path)
            sources = [(fn, r) for (_k, fn), r in zip(in_edges, src_rows)]
            new_row = []
            for j in range(n):
                if i == j:
                    new = trivial
                else:
                    new = invalid
                    for fn, src_row in sources:
                        new = choice(new, fn(src_row[j]))
                new_row.append(new)
                if not row_changed and not equal(new, old_row[j]):
                    row_changed = True
        row = new_row if row_changed else old_row
        if row_changed:
            changed_any = True
        if cache is not None:
            cache.store(i, src_rows, row)
        rows.append(row)
    return RoutingState.adopt(rows), changed_any


def delta_step(network: Network, schedule: Schedule,
               history, t: int) -> RoutingState:
    """Compute δᵗ(X) given ``history[0..t-1]`` (history[s] = δˢ(X))."""
    state, _ = _delta_step_tracked(network, schedule, history, t)
    return state


def _delta_run_resolved(network: Network, schedule: Schedule,
                        start: RoutingState, rung: str,
                        max_steps: int = 2_000,
                        stability_window: Optional[int] = None,
                        keep_history: bool = False,
                        workers: Optional[int] = None,
                        engine_obj=None,
                        window: Optional[int] = None) -> AsyncResult:
    """Run δ on one *already negotiated* ladder rung (no fallback here).

    ``rung`` must come from an
    :class:`~repro.core.capabilities.EngineResolution` — in particular
    the parallel/batched rungs are only ever chosen for bounded
    schedules without ``keep_history``.  ``engine_obj`` reuses a
    prebuilt engine (a :class:`~repro.session.RoutingSession`'s managed
    instance); ``window`` sets the parallel δ IPC window.  The
    ``"naive"`` rung runs the strict literal paper recursion.
    """
    if rung == "remote":
        from .remote import delta_run_remote
        return delta_run_remote(
            network, schedule, start, max_steps=max_steps,
            stability_window=stability_window, keep_history=keep_history,
            engine=engine_obj, workers=workers, window=window)
    if rung == "batched":
        from .vectorized import delta_run_batched
        return delta_run_batched(
            network, schedule, start, max_steps=max_steps,
            stability_window=stability_window, engine=engine_obj)
    if rung == "parallel":
        from .parallel import delta_run_parallel
        return delta_run_parallel(
            network, schedule, start, max_steps=max_steps,
            stability_window=stability_window, keep_history=keep_history,
            engine=engine_obj, workers=workers, window=window)
    if rung == "vectorized":
        # local import: vectorized imports AsyncResult from this module
        from .vectorized import delta_run_vectorized
        return delta_run_vectorized(
            network, schedule, start, max_steps=max_steps,
            stability_window=stability_window, keep_history=keep_history,
            engine=engine_obj)
    return _delta_run_serial(network, schedule, start, max_steps=max_steps,
                             stability_window=stability_window,
                             keep_history=keep_history,
                             strict=(rung == "naive"))


def _delta_run_serial(network: Network, schedule: Schedule,
                      start: RoutingState, max_steps: int = 2_000,
                      stability_window: Optional[int] = None,
                      keep_history: bool = False,
                      strict: bool = False) -> AsyncResult:
    """The object-model δ loop: incremental tracked stepper, or the
    literal paper recursion when ``strict``.

    ``stability_window`` defaults to (max read-back of the schedule) + 2:
    once the state has been constant for longer than every β read-back
    *and* is σ-stable, every future activation recomputes the same
    entries, so the limit has provably been reached.

    By default the history is a ring buffer of the last
    ``max read-back + 2`` states (O(window · n²) memory).  The full
    history is retained instead when ``strict=True`` (which also runs
    the literal paper recursion, :func:`delta_step_literal`), when
    ``keep_history=True`` (the caller asked for every state), or when
    the schedule declares no staleness bound
    (``max_read_back() is None`` — β may reach arbitrarily far back, so
    bounding the buffer would be unsound).  Results are identical in
    every mode.
    """
    max_read_back = schedule.max_read_back()
    if stability_window is None:
        stability_window = (max_read_back or 1) + 2

    full = strict or keep_history or max_read_back is None
    history = ([start] if full
               else BoundedHistory(start, window=max_read_back + 2))
    alg = network.algebra
    unchanged = 0
    cache = None if strict else DeltaRowCache()
    for t in range(1, max_steps + 1):
        if strict:
            nxt = delta_step_literal(network, schedule, history, t)
            changed = not nxt.equals(history[t - 1], alg)
        else:
            nxt, changed = _delta_step_tracked(network, schedule, history, t,
                                               cache)
        history.append(nxt)
        unchanged = 0 if changed else unchanged + 1
        if unchanged >= stability_window and is_stable(network, nxt):
            converged_at = t - unchanged
            return AsyncResult(True, t, nxt, converged_at,
                               history if keep_history else None,
                               history_retained=len(history))
    return AsyncResult(False, max_steps, history[max_steps], None,
                       history if keep_history else None,
                       history_retained=len(history))


def delta_run(network: Network, schedule: Schedule, start: RoutingState,
              max_steps: int = 2_000, stability_window: Optional[int] = None,
              keep_history: bool = False, strict: bool = False,
              engine: str = "incremental",
              workers: Optional[int] = None) -> AsyncResult:
    """Run δ from ``start`` under ``schedule`` until convergence.

    .. deprecated::
        Thin shim over :meth:`repro.session.RoutingSession.delta` —
        the session negotiates the engine rung explicitly (recorded
        reason chain instead of silent fallback), owns pool and
        shared-memory lifetimes, and returns a typed
        :class:`~repro.session.DeltaReport`.  Delegates there and emits
        a :class:`DeprecationWarning`; results are bit-identical.

    ``engine`` selects a rung of the five-engine ladder with the same
    fallback discipline as before (``"naive"`` is an alias for the
    strict literal recursion); ``strict=True`` runs
    :func:`delta_step_literal` with the full history; ``keep_history``
    retains and returns every state; ``workers`` sizes the parallel
    pool.  See :func:`_delta_run_serial` for the history/convergence
    semantics shared by every rung.
    """
    warn_deprecated("delta_run()", "RoutingSession.delta()")
    from ..session import EngineSpec, RoutingSession
    with RoutingSession(network, EngineSpec(engine, workers=workers)) as s:
        return s.delta(schedule, start, max_steps=max_steps,
                       stability_window=stability_window,
                       keep_history=keep_history, strict=strict).result


@dataclass
class AbsoluteConvergenceReport:
    """Result of an absolute-convergence experiment (Definition 8).

    δ converges *absolutely* when every (starting state, schedule) pair
    reaches the same stable state.  The experiment samples both axes
    and reports the set of distinct final states observed.
    """

    runs: int
    all_converged: bool
    distinct_fixed_points: List[RoutingState]
    convergence_steps: List[int]

    @property
    def absolute(self) -> bool:
        """True when every run converged to one common fixed point."""
        return self.all_converged and len(self.distinct_fixed_points) == 1

    @property
    def max_steps(self) -> int:
        return max(self.convergence_steps) if self.convergence_steps else 0

    @property
    def mean_steps(self) -> float:
        if not self.convergence_steps:
            return 0.0
        return sum(self.convergence_steps) / len(self.convergence_steps)


def absolute_convergence_experiment(
        network: Network,
        starts: Sequence[RoutingState],
        schedules: Sequence[Schedule],
        max_steps: int = 2_000,
        engine: str = "incremental",
        workers: Optional[int] = None) -> AbsoluteConvergenceReport:
    """Run δ for the cross-product of ``starts`` × ``schedules``.

    This is the executable form of Theorem 7 / Theorem 11: for a finite
    strictly increasing algebra (or an increasing path algebra) the
    report must come back with ``absolute == True``.  Negative controls
    (e.g. SPP DISAGREE) come back with several distinct fixed points or
    non-convergence.  ``engine`` is forwarded to every
    :func:`delta_run` (finite algebras benefit from ``"vectorized"`` or
    ``"parallel"``; one engine — and for ``"parallel"`` one worker pool
    — is built up front and reused across all runs so edge tables are
    encoded and workers spawned once, not once per (start × schedule)
    pair; the pool is torn down in a ``finally`` even when a run
    raises).  ``workers`` sizes the parallel pool as in
    :func:`delta_run`.

    ``engine="batched"`` changes the execution *shape*, not the
    result: instead of a Python loop over (start × schedule) pairs,
    the whole grid is stacked into one ``(B, n, n)`` code tensor and
    every δ step runs for all trials per kernel invocation
    (:func:`repro.core.vectorized.absolute_convergence_batched`),
    with finished trials dropping out.  Non-finite algebras fall one
    rung down to ``"parallel"`` (and onward down the ladder) as usual.

    .. deprecated::
        Thin shim over :meth:`repro.session.RoutingSession.delta_grid`
        (which reuses one negotiated engine — and for the parallel rung
        one worker pool — across the whole grid, exactly as this
        function did).  Delegates there and emits a
        :class:`DeprecationWarning`; results are bit-identical.
    """
    warn_deprecated("absolute_convergence_experiment()",
                    "RoutingSession.delta_grid()")
    from ..session import EngineSpec, RoutingSession
    trials = [(sched, start) for start in starts for sched in schedules]
    with RoutingSession(network, EngineSpec(engine, workers=workers)) as s:
        grid = s.delta_grid(trials, max_steps=max_steps)
    return AbsoluteConvergenceReport(grid.runs, grid.all_converged,
                                     list(grid.distinct_fixed_points),
                                     list(grid.convergence_steps))


def random_state(algebra: RoutingAlgebra, n: int, rng,
                 sampler=None) -> RoutingState:
    """Draw an arbitrary routing state, as Theorems 7/11 quantify over.

    ``sampler(rng)`` draws one route (defaults to
    ``algebra.sample_route``).  The diagonal is *not* forced to 0̄: the
    theorems promise recovery from truly arbitrary (even nonsensical)
    states, and one application of σ/δ repairs the diagonal (Lemma 1).
    """
    draw = sampler or (lambda r: algebra.sample_route(r))
    return RoutingState.from_function(lambda i, j: draw(rng), n)
