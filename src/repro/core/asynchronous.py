"""The asynchronous operator δ (Section 3.1) and convergence experiments.

Given a schedule ``(α, β)`` and a starting state ``X``, the paper defines

    δ⁰(X)            = X
    δᵗ(X)[i][j]      = ⨁_k A[i][k]( δ^{β(t,i,k)}(X)[k][j] ) ⊕ I[i][j]   if i ∈ α(t)
                     = δ^{t-1}(X)[i][j]                                  otherwise

This module implements that recursion *literally*, with the full state
history kept so that β may reach arbitrarily far back (bounded-memory
variants belong to :mod:`repro.protocols.simulator`, which models real
message queues).

Convergence detection
---------------------

Definition 6 quantifies over infinite time, which an experiment cannot.
We use a sound finite criterion for bounded-staleness schedules: if the
state has been constant for a window longer than the schedule's maximum
read-back *and* the current state is σ-stable, every future activation
reads data equal to the current state, so the run has provably reached
its limit.  For schedules without a known staleness bound we fall back
to "stable for `stability_window` consecutive steps and σ-fixed".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from .schedule import Schedule
from .state import Network, RoutingState
from .synchronous import is_stable, sigma
from .algebra import RoutingAlgebra


@dataclass
class AsyncResult:
    """Outcome of a δ run."""

    converged: bool
    steps: int                        #: total δ steps simulated
    state: RoutingState               #: state at the final step
    converged_at: Optional[int] = None  #: first step from which state stayed fixed
    history: Optional[List[RoutingState]] = field(default=None, repr=False)

    @property
    def fixed_point(self) -> RoutingState:
        if not self.converged:
            raise ValueError("δ run did not converge; no fixed point")
        return self.state


def delta_step(network: Network, schedule: Schedule,
               history: List[RoutingState], t: int) -> RoutingState:
    """Compute δᵗ(X) given ``history[0..t-1]`` (history[s] = δˢ(X))."""
    alg = network.algebra
    n = network.n
    prev = history[t - 1]
    active = schedule.alpha(t)
    rows = []
    for i in range(n):
        if i not in active:
            rows.append(list(prev.rows[i]))
            continue
        row = []
        in_neighbours = network.neighbours_in(i)
        for j in range(n):
            if i == j:
                row.append(alg.trivial)
                continue
            candidates = []
            for k in in_neighbours:
                src_time = schedule.beta(t, i, k)
                candidates.append(network.edge(i, k)(history[src_time].get(k, j)))
            row.append(alg.best(candidates))
        rows.append(row)
    return RoutingState(rows)


def delta_run(network: Network, schedule: Schedule, start: RoutingState,
              max_steps: int = 2_000, stability_window: Optional[int] = None,
              keep_history: bool = False) -> AsyncResult:
    """Run δ from ``start`` under ``schedule`` until convergence.

    ``stability_window`` defaults to (max read-back of the schedule) + 2:
    once the state has been constant for longer than every β read-back
    *and* is σ-stable, every future activation recomputes the same
    entries, so the limit has provably been reached.
    """
    if stability_window is None:
        max_delay = getattr(schedule, "max_delay", None) or \
            getattr(schedule, "delay", None) or 1
        stability_window = max_delay + 2

    history: List[RoutingState] = [start]
    alg = network.algebra
    unchanged = 0
    for t in range(1, max_steps + 1):
        nxt = delta_step(network, schedule, history, t)
        history.append(nxt)
        if nxt.equals(history[t - 1], alg):
            unchanged += 1
        else:
            unchanged = 0
        if unchanged >= stability_window and is_stable(network, nxt):
            converged_at = t - unchanged
            return AsyncResult(True, t, nxt, converged_at,
                               history if keep_history else None)
    return AsyncResult(False, max_steps, history[-1], None,
                       history if keep_history else None)


@dataclass
class AbsoluteConvergenceReport:
    """Result of an absolute-convergence experiment (Definition 8).

    δ converges *absolutely* when every (starting state, schedule) pair
    reaches the same stable state.  The experiment samples both axes
    and reports the set of distinct final states observed.
    """

    runs: int
    all_converged: bool
    distinct_fixed_points: List[RoutingState]
    convergence_steps: List[int]

    @property
    def absolute(self) -> bool:
        """True when every run converged to one common fixed point."""
        return self.all_converged and len(self.distinct_fixed_points) == 1

    @property
    def max_steps(self) -> int:
        return max(self.convergence_steps) if self.convergence_steps else 0

    @property
    def mean_steps(self) -> float:
        if not self.convergence_steps:
            return 0.0
        return sum(self.convergence_steps) / len(self.convergence_steps)


def absolute_convergence_experiment(
        network: Network,
        starts: Sequence[RoutingState],
        schedules: Sequence[Schedule],
        max_steps: int = 2_000) -> AbsoluteConvergenceReport:
    """Run δ for the cross-product of ``starts`` × ``schedules``.

    This is the executable form of Theorem 7 / Theorem 11: for a finite
    strictly increasing algebra (or an increasing path algebra) the
    report must come back with ``absolute == True``.  Negative controls
    (e.g. SPP DISAGREE) come back with several distinct fixed points or
    non-convergence.
    """
    alg = network.algebra
    fixed_points: List[RoutingState] = []
    steps: List[int] = []
    all_converged = True
    runs = 0
    for start in starts:
        for sched in schedules:
            runs += 1
            result = delta_run(network, sched, start, max_steps=max_steps)
            if not result.converged:
                all_converged = False
                continue
            steps.append(result.converged_at or result.steps)
            if not any(result.state.equals(fp, alg) for fp in fixed_points):
                fixed_points.append(result.state)
    return AbsoluteConvergenceReport(runs, all_converged, fixed_points, steps)


def random_state(algebra: RoutingAlgebra, n: int, rng,
                 sampler=None) -> RoutingState:
    """Draw an arbitrary routing state, as Theorems 7/11 quantify over.

    ``sampler(rng)`` draws one route (defaults to
    ``algebra.sample_route``).  The diagonal is *not* forced to 0̄: the
    theorems promise recovery from truly arbitrary (even nonsensical)
    states, and one application of σ/δ repairs the diagonal (Lemma 1).
    """
    draw = sampler or (lambda r: algebra.sample_route(r))
    return RoutingState.from_function(lambda i, j: draw(rng), n)
