"""Incremental delta-propagation engine for σ/δ.

The literal operators in :mod:`repro.core.synchronous` /
:mod:`repro.core.asynchronous` recompute every one of the ``n²`` state
entries each round.  That is faithful to the paper but wasteful: by
Eq. 5, ``σ(X)[i][j]`` depends only on ``X[k][j]`` for ``k`` an
in-neighbour of ``i``, so an entry of the *next* state can differ from
the corresponding entry of the *current* one only if some in-neighbour's
route to that destination just changed.  Propagating changes therefore
needs only the **dirty set**

    dirty(X_t) = { (k, j) : X_t[k][j] ≠ X_{t-1}[k][j] }

and the cached :class:`~repro.core.state.NetworkTopology` out-neighbour
lists.  The scheme:

* :func:`sigma_with_dirty` — one full σ round that *also* reports the
  dirty set (used to seed an iteration, and after topology changes);
* :func:`sigma_propagate` — one σ round that recomputes only entries
  reachable from the dirty set, shares every untouched row object with
  the previous state, and returns the next dirty set.  An **empty dirty
  set is exactly σ-stability** (Definition 4), so fixed-point detection
  is free — no per-round O(n²) ``equals`` scan.

Invariant required by :func:`sigma_propagate`: ``state`` is
``σ(previous)`` for some state ``previous`` and ``dirty`` is the set of
entries where they differ.  ``iterate_sigma`` maintains this by seeding
with :func:`sigma_with_dirty`; after a mid-run ``set_edge`` /
``remove_edge`` the invariant is void and the iteration must re-seed
(the public drivers always start with a full round, so calling them
again after a topology change is safe).

:class:`BoundedHistory` is the memory half of the engine: δ's data-flow
function β can only reach back a bounded number of steps on admissible
bounded-staleness schedules, so ``delta_run`` needs a ring buffer of the
last ``max read-back + 2`` states, not the O(steps · n²) full history
the literal recursion keeps (``strict=True`` restores the latter for
paper-fidelity tests).

:class:`DeltaRowCache` is the δ mirror of the dirty-set idea: a node's
activation refolds exactly the per-neighbour historic rows it reads, so
remembering the rows *last* read (as
:class:`~repro.protocols.node.ProtocolNode` keeps the last route heard
per neighbour) lets the next activation refold only the destinations
whose reads actually changed — O(changed entries) instead of O(n) per
activation, with identity checks skipping whole neighbours for free
because the incremental engines share unchanged row objects across
history states.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Set, Tuple

from .state import Network, RoutingState

#: A set of (node, destination) entries that changed in the last round.
DirtySet = Set[Tuple[int, int]]


def sigma_with_dirty(network: Network,
                     state: RoutingState) -> Tuple[RoutingState, DirtySet]:
    """One full σ round returning ``(σ(X), dirty)``.

    ``dirty`` is the set of ``(i, j)`` entries where ``σ(X)`` differs
    from ``X`` under the algebra's route equality; rows with no changed
    entry are shared structurally with ``state``.  ``dirty == ∅`` iff
    ``X`` is σ-stable.
    """
    alg = network.algebra
    n = network.n
    topo = network.adjacency.topology
    choice, equal = alg.choice, alg.equal
    trivial, invalid = alg.trivial, alg.invalid
    rows = state.rows
    dirty: DirtySet = set()
    new_rows: List[List] = []
    for i in range(n):
        # fold ⊕ over (k, A[i][k](X[k][j])) with hoisted source rows —
        # an explicit loop, not best(genexp), keeps this hot path tight
        sources = [(fn, rows[k]) for (k, fn) in topo.in_edges[i]]
        old_row = rows[i]
        row = []
        row_changed = False
        for j in range(n):
            if i == j:
                new = trivial
            else:
                new = invalid
                for fn, src_row in sources:
                    new = choice(new, fn(src_row[j]))
            row.append(new)
            if not equal(new, old_row[j]):
                dirty.add((i, j))
                row_changed = True
        new_rows.append(row if row_changed else old_row)
    return RoutingState.adopt(new_rows), dirty


def sigma_propagate(network: Network, state: RoutingState,
                    dirty: DirtySet) -> Tuple[RoutingState, DirtySet]:
    """One incremental σ round: recompute only change-reachable entries.

    Requires the iteration invariant (``state = σ(previous)`` with
    ``dirty`` their difference — see the module docstring).  Only
    entries ``(i, j)`` with some dirty in-neighbour ``(k, j)``,
    ``k ∈ in(i)``, can differ from ``state``; everything else — and
    every untouched row *object* — is shared with ``state``.
    """
    if not dirty:
        return state, set()
    alg = network.algebra
    topo = network.adjacency.topology
    choice, equal = alg.choice, alg.equal
    trivial, invalid = alg.trivial, alg.invalid
    out_neighbours = topo.out_neighbours
    rows = state.rows

    # Which entries may change?  (i, j) for every i importing from a
    # node whose route to j just changed, grouped by row.
    touched: Dict[int, Set[int]] = {}
    for (k, j) in dirty:
        for i in out_neighbours[k]:
            dests = touched.get(i)
            if dests is None:
                touched[i] = {j}
            else:
                dests.add(j)

    new_rows = list(rows)            # share all row objects by default
    new_dirty: DirtySet = set()
    for i, dests in touched.items():
        sources = [(fn, rows[k]) for (k, fn) in topo.in_edges[i]]
        old_row = rows[i]
        new_row = None
        for j in dests:
            if i == j:
                new = trivial      # Lemma 1: the diagonal stays 0̄
            else:
                new = invalid
                for fn, src_row in sources:
                    new = choice(new, fn(src_row[j]))
            if not equal(new, old_row[j]):
                if new_row is None:
                    new_row = list(old_row)
                new_row[j] = new
                new_dirty.add((i, j))
        if new_row is not None:
            new_rows[i] = new_row
    return RoutingState.adopt(new_rows), new_dirty


class DeltaRowCache:
    """Per-node memo of a δ activation's reads and its folded result.

    ``store(i, src_rows, row)`` records, for node ``i``'s most recent
    activation, the historic source rows it read (aligned to the
    topology snapshot's in-edge order) and the row object it produced —
    which is by construction the row of ``i`` in every later state
    until ``i``'s next activation, so the cache can prove most of the
    next refold redundant.  ``sync`` must be called with the adjacency
    matrix before each step: a topology mutation changes both the
    in-edge lists and the edge functions, so all memos are dropped when
    ``adjacency.version`` moves.

    Memory trade-off: memos hold references to historic row objects, so
    rows already evicted from the :class:`BoundedHistory` ring can stay
    alive — at most one row per present edge (the last one each
    importer read from each neighbour), i.e. worst-case O(E · n) route
    references on top of the ring's O(window · n²).  Mostly these are
    the *same* objects the ring still holds (the engines share
    unchanged rows structurally), the cache lives only for the duration
    of one ``delta_run``, and the refolds it saves dominate — but dense
    networks with very stale schedules pay the pin.
    """

    __slots__ = ("_version", "_entries")

    def __init__(self):
        self._version = None
        self._entries: Dict[int, Tuple[List, List]] = {}

    def sync(self, adjacency) -> None:
        """Drop every memo if the topology has mutated since last step."""
        if self._version != adjacency.version:
            self._entries.clear()
            self._version = adjacency.version

    def get(self, i: int):
        """``(src_rows, result_row)`` from ``i``'s last activation, or
        ``None``."""
        return self._entries.get(i)

    def store(self, i: int, src_rows: List, row: List) -> None:
        self._entries[i] = (src_rows, row)


class BoundedHistory:
    """Ring buffer of δ states indexed by *absolute* time.

    Supports the subset of the list protocol ``delta_step`` uses
    (``history[t]``), but retains only the last ``window`` states.
    Reads older than the window raise :class:`LookupError` — on a
    bounded-staleness schedule sized via
    :meth:`~repro.core.schedule.Schedule.max_read_back` this never
    happens; if it does, the schedule reaches further back than it
    declared and the caller should use ``delta_run(..., strict=True)``.
    """

    __slots__ = ("window", "_states", "_base")

    def __init__(self, start: RoutingState, window: int):
        if window < 2:
            raise ValueError("window must cover at least δᵗ⁻¹ and δᵗ")
        self.window = window
        self._states = deque([start], maxlen=window)
        self._base = 0              # absolute time of _states[0]

    def append(self, state: RoutingState) -> None:
        if len(self._states) == self.window:
            self._base += 1         # the deque evicts _states[0]
        self._states.append(state)

    def __getitem__(self, t: int) -> RoutingState:
        idx = t - self._base
        if idx < 0:
            raise LookupError(
                f"δ history for time {t} was evicted (window={self.window}, "
                f"oldest retained={self._base}); the schedule reads further "
                f"back than its declared max_read_back — run "
                f"delta_run(..., strict=True) to keep the full history")
        return self._states[idx]

    def __len__(self) -> int:
        return len(self._states)

    @property
    def end_time(self) -> int:
        """Absolute time of the most recently appended state."""
        return self._base + len(self._states) - 1

    def __repr__(self) -> str:
        return (f"BoundedHistory(window={self.window}, "
                f"retained=[{self._base}..{self.end_time}])")
