"""Deterministic, seeded fault injection for the distributed layers.

The source paper's convergence theorems are claims about *unreliable*
asynchronous delivery, but a loopback TCP test bed never drops, delays
or corrupts anything on its own.  This module supplies the missing
adversary: a :class:`FaultPlan` is a declarative, seeded list of
:class:`FaultRule`\\ s, and a :class:`FaultInjector` is the per-peer
runtime that applies them **at frame boundaries** inside
:class:`repro.core.wire.FrameConnection` (both directions) and the
service daemon's stream reader.

Determinism contract
--------------------

A fault decision is a pure function of the key
``(role, shard, round, msg_index)`` plus the direction (``send`` /
``recv``), the frame's message type, the plan ``seed`` and the rule's
position in the plan: probabilistic rules draw from a keyed blake2b
hash, never from global RNG state, so the same plan against the same
protocol trace injects exactly the same faults — chaos runs replay.
``msg_index`` counts frames through one injector per direction;
``round`` is advanced by the protocol layer at every barrier (the
remote coordinator ties it to its acked-round counter; peers that have
no barrier notion leave it at 0 and match on ``msg_index`` instead).

Rules with a finite ``times`` budget share that budget across every
injector created from the same plan object (one process), so "kill one
worker once" keeps meaning *once* even after the supervisor respawns
the worker and opens a fresh connection.

Fault taxonomy (``kind``)
-------------------------

``drop``
    send: the frame is silently not written.  recv: the frame is read
    and discarded; the reader waits for the next one.  Either way the
    peer eventually trips its deadline — the timeout path.
``delay``
    sleep ``delay_ms`` before delivering the frame (still lossless).
``corrupt``
    XOR ``xor_mask`` into one byte at ``offset``.  On send this mangles
    the frame header (bad magic at the peer); on recv it mangles the
    payload (typed decode error above).
``truncate``
    send: write only the first ``truncate_to`` bytes, then close — the
    peer sees a torn frame.  recv: deliver a ``truncate_to``-byte
    payload prefix (typed decode error above).
``close``
    drop the connection at this frame boundary without sending/reading.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

__all__ = [
    "FAULT_KINDS",
    "FaultPlanError",
    "FaultRule",
    "FaultPlan",
    "FaultInjector",
    "RECV_PASS",
    "RECV_DROP",
    "RECV_CLOSE",
]

#: The closed vocabulary of injectable faults.
FAULT_KINDS = ("drop", "delay", "corrupt", "truncate", "close")

_ROLES = ("coordinator", "worker", "daemon")
_OPS = ("send", "recv")

# recv-side verdicts returned by :meth:`FaultInjector.recv_frame`.
RECV_PASS = "pass"
RECV_DROP = "drop"
RECV_CLOSE = "close"


class FaultPlanError(ValueError):
    """A fault-plan spec is malformed (unknown kind/role/op, bad prob)."""


@dataclass(frozen=True)
class FaultRule:
    """One declarative fault.  ``None`` fields are wildcards.

    ``times`` bounds how often the rule may fire across the whole plan
    (0 = unlimited); ``prob`` gates each candidate firing with a
    deterministic keyed draw.
    """

    kind: str
    role: Optional[str] = None
    shard: Optional[int] = None
    round: Optional[int] = None
    msg_index: Optional[int] = None
    op: Optional[str] = None
    msg_type: Optional[int] = None
    prob: float = 1.0
    times: int = 1
    delay_ms: float = 50.0
    truncate_to: int = 6
    xor_mask: int = 0xFF
    offset: int = 0

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise FaultPlanError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{FAULT_KINDS}")
        if self.role is not None and self.role not in _ROLES:
            raise FaultPlanError(
                f"unknown role {self.role!r}; expected one of {_ROLES}")
        if self.op is not None and self.op not in _OPS:
            raise FaultPlanError(
                f"unknown op {self.op!r}; expected 'send' or 'recv'")
        if not 0.0 <= self.prob <= 1.0:
            raise FaultPlanError(
                f"prob must be in [0, 1], got {self.prob}")
        if self.times < 0:
            raise FaultPlanError(f"times must be >= 0, got {self.times}")
        if self.delay_ms < 0:
            raise FaultPlanError(
                f"delay_ms must be >= 0, got {self.delay_ms}")
        if self.truncate_to < 0:
            raise FaultPlanError(
                f"truncate_to must be >= 0, got {self.truncate_to}")
        if not 0 <= self.xor_mask <= 0xFF:
            raise FaultPlanError(
                f"xor_mask must be one byte, got {self.xor_mask}")

    def matches(self, role: str, shard: Optional[int], round_: int,
                msg_index: int, op: str, msg_type: int) -> bool:
        return ((self.role is None or self.role == role)
                and (self.shard is None or self.shard == shard)
                and (self.round is None or self.round == round_)
                and (self.msg_index is None or self.msg_index == msg_index)
                and (self.op is None or self.op == op)
                and (self.msg_type is None or self.msg_type == msg_type))

    def as_dict(self) -> dict:
        out = {"kind": self.kind}
        for key in ("role", "shard", "round", "msg_index", "op",
                    "msg_type"):
            value = getattr(self, key)
            if value is not None:
                out[key] = value
        if self.prob != 1.0:
            out["prob"] = self.prob
        if self.times != 1:
            out["times"] = self.times
        if self.kind == "delay":
            out["delay_ms"] = self.delay_ms
        if self.kind == "truncate":
            out["truncate_to"] = self.truncate_to
        if self.kind == "corrupt":
            out["xor_mask"] = self.xor_mask
            out["offset"] = self.offset
        return out


def _keyed_draw(seed: int, rule_index: int, role: str,
                shard: Optional[int], round_: int, msg_index: int,
                op: str) -> float:
    """Deterministic uniform draw in [0, 1) keyed by the fault key.

    blake2b, not ``hash()``: stable across processes and interpreter
    runs, which is the whole replay contract.
    """
    key = repr((seed, rule_index, role, shard, round_, msg_index, op))
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big") / float(1 << 64)


class FaultPlan:
    """A seeded list of fault rules plus the shared firing budget.

    Parse one from JSON (``FaultPlan.parse``), build injectors with
    :meth:`injector`.  The plan object is the unit of sharing: every
    injector it creates consumes the same per-rule ``times`` budget, so
    a respawned worker's fresh connection cannot re-fire a spent
    single-shot rule.
    """

    def __init__(self, rules=(), seed: int = 0):
        norm = []
        for rule in rules:
            if isinstance(rule, dict):
                try:
                    rule = FaultRule(**rule)
                except TypeError as exc:
                    raise FaultPlanError(f"bad fault rule: {exc}") from None
            if not isinstance(rule, FaultRule):
                raise FaultPlanError(
                    f"rules must be FaultRule or dict, got {type(rule)}")
            norm.append(rule)
        self.rules: Tuple[FaultRule, ...] = tuple(norm)
        self.seed = int(seed)
        self._fired: Dict[int, int] = {}

    @classmethod
    def parse(cls, spec) -> "FaultPlan":
        """Build a plan from a JSON string, a dict, or a plan."""
        if isinstance(spec, FaultPlan):
            return spec
        if isinstance(spec, str):
            try:
                spec = json.loads(spec)
            except json.JSONDecodeError as exc:
                raise FaultPlanError(
                    f"fault plan is not valid JSON: {exc}") from None
        if not isinstance(spec, dict):
            raise FaultPlanError(
                f"fault plan must be a JSON object, got {type(spec)}")
        unknown = set(spec) - {"rules", "seed"}
        if unknown:
            raise FaultPlanError(
                f"unknown fault-plan keys {sorted(unknown)}")
        rules = spec.get("rules", ())
        if not isinstance(rules, (list, tuple)):
            raise FaultPlanError("'rules' must be a list")
        return cls(rules, seed=spec.get("seed", 0))

    def as_dict(self) -> dict:
        return {"seed": self.seed,
                "rules": [r.as_dict() for r in self.rules]}

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), separators=(",", ":"))

    def injector(self, role: str, shard: Optional[int] = None
                 ) -> "FaultInjector":
        return FaultInjector(self, role, shard)

    # -- shared firing budget -------------------------------------------

    def _try_fire(self, rule_index: int) -> bool:
        rule = self.rules[rule_index]
        if rule.times and self._fired.get(rule_index, 0) >= rule.times:
            return False
        self._fired[rule_index] = self._fired.get(rule_index, 0) + 1
        return True

    # The plan crosses a Pipe into spawned loopback workers; the budget
    # dict restarts empty on the far side (each process adversaries
    # independently), which pickling handles fine as-is.
    def __reduce__(self):
        return (_rebuild_plan, (self.rules, self.seed))


def _rebuild_plan(rules, seed):
    return FaultPlan(rules, seed=seed)


@dataclass
class FaultInjector:
    """Per-peer fault runtime: counters + the plan's rules.

    One injector per connection per direction-pair.  ``round`` is
    public — the protocol layer above sets it at barriers so rules can
    target "the σ round after the third barrier" deterministically.
    """

    plan: FaultPlan
    role: str
    shard: Optional[int] = None
    round: int = 0
    injected: int = 0
    _indices: Dict[str, int] = field(default_factory=lambda: {
        "send": 0, "recv": 0})

    def _match(self, op: str, msg_type: int) -> Optional[FaultRule]:
        idx = self._indices[op]
        self._indices[op] = idx + 1
        for rule_index, rule in enumerate(self.plan.rules):
            if not rule.matches(self.role, self.shard, self.round, idx,
                                op, msg_type):
                continue
            if rule.prob < 1.0 and _keyed_draw(
                    self.plan.seed, rule_index, self.role, self.shard,
                    self.round, idx, op) >= rule.prob:
                continue
            if not self.plan._try_fire(rule_index):
                continue
            self.injected += 1
            return rule
        return None

    # -- frame hooks (wire.FrameConnection calls these) ------------------
    #
    # Two flavours per direction: the blocking ones (``send_frame`` /
    # ``recv_frame``) sleep through ``delay`` faults inline — right for
    # the synchronous wire path, where one connection is one thread.
    # The ``*_nowait`` variants return the delay in seconds instead so
    # an event-loop host (the service daemon) can ``await
    # asyncio.sleep(delay)`` and stall only the targeted peer.

    def send_frame_nowait(self, msg_type: int, frame: bytes
                          ) -> Tuple[Optional[bytes], bool, float]:
        """Filter an outgoing frame without sleeping.

        Returns ``(data, close_after, delay_s)``: ``data is None``
        means send nothing; ``close_after`` means drop the connection
        after writing whatever ``data`` is; ``delay_s`` is how long the
        caller must stall *this* peer before sending.
        """
        rule = self._match("send", msg_type)
        if rule is None:
            return frame, False, 0.0
        if rule.kind == "drop":
            return None, False, 0.0
        if rule.kind == "delay":
            return frame, False, rule.delay_ms / 1000.0
        if rule.kind == "corrupt":
            return _xor_byte(frame, rule.offset, rule.xor_mask), False, 0.0
        if rule.kind == "truncate":
            keep = min(rule.truncate_to, max(len(frame) - 1, 0))
            return frame[:keep], True, 0.0
        return None, True, 0.0           # close

    def send_frame(self, msg_type: int, frame: bytes
                   ) -> Tuple[Optional[bytes], bool]:
        """Blocking variant of :meth:`send_frame_nowait` (sleeps through
        ``delay`` faults); returns ``(data, close_after)``."""
        data, close_after, delay = self.send_frame_nowait(msg_type, frame)
        if delay > 0.0:
            time.sleep(delay)
        return data, close_after

    def recv_frame_nowait(self, msg_type: int, payload: bytes
                          ) -> Tuple[str, bytes, float]:
        """Filter a received frame without sleeping: ``(verdict,
        payload, delay_s)`` where the verdict is :data:`RECV_PASS`,
        :data:`RECV_DROP` (read the next frame instead) or
        :data:`RECV_CLOSE` (sever the connection), and ``delay_s`` is
        how long the caller must stall this peer before acting on it."""
        rule = self._match("recv", msg_type)
        if rule is None:
            return RECV_PASS, payload, 0.0
        if rule.kind == "drop":
            return RECV_DROP, b"", 0.0
        if rule.kind == "delay":
            return RECV_PASS, payload, rule.delay_ms / 1000.0
        if rule.kind == "corrupt":
            return RECV_PASS, _xor_byte(payload, rule.offset,
                                        rule.xor_mask), 0.0
        if rule.kind == "truncate":
            return RECV_PASS, \
                payload[:min(rule.truncate_to, len(payload))], 0.0
        return RECV_CLOSE, b"", 0.0      # close

    def recv_frame(self, msg_type: int, payload: bytes
                   ) -> Tuple[str, bytes]:
        """Blocking variant of :meth:`recv_frame_nowait` (sleeps through
        ``delay`` faults); returns ``(verdict, payload)``."""
        verdict, payload, delay = self.recv_frame_nowait(msg_type, payload)
        if delay > 0.0:
            time.sleep(delay)
        return verdict, payload


def _xor_byte(data: bytes, offset: int, mask: int) -> bytes:
    if not data:
        return data
    pos = min(offset, len(data) - 1)
    out = bytearray(data)
    out[pos] ^= mask
    # a zero-mask XOR would be a silent no-op fault; force a flip
    if out[pos] == data[pos]:
        out[pos] ^= 0xFF
    return bytes(out)
