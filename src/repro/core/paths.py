"""Simple paths and the ``weight``/``path`` machinery of Section 5.1.

Representation
--------------

A (valid) path is a tuple of node ids ``(v0, v1, ..., vk)`` read from the
route's owner ``v0`` to the destination ``vk``.  The paper's *empty path*
``[]`` — the path of the trivial route 0̄ — is the empty tuple ``()``.
The invalid path ``⊥`` is the module-level singleton :data:`BOTTOM`.

The paper phrases paths as sequences of edges ``(i, j) :: q``; with the
node-tuple representation the extension ``(i, j) :: q`` becomes
``(i,) + q`` and is *admissible* (written ``(i, j) ⇿ q`` in the paper's
Agda) when either ``q`` is empty (we are extending the destination's own
trivial route, so any edge into it is fine) or ``j == q[0]`` (the edge
must plug into the head of the path).  The simplicity check ``i ∉ q``
rejects loops.

Weight
------

``weight(p)`` (Section 5.1) folds the adjacency matrix along the path::

    weight(⊥)          = ∞̄
    weight([])         = 0̄
    weight((i,j) :: q) = A_ij(weight(q))

Consistency (Definition 15) — ``weight(path(r)) == r`` — and the
enumeration of the finite set of consistent routes ``S_c`` both live
here too.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple


class _Bottom:
    """The invalid path ⊥ (singleton)."""

    _instance: Optional["_Bottom"] = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "⊥"

    def __reduce__(self):  # keep singleton identity across pickling
        return (_Bottom, ())


#: The invalid path ⊥ — the path of the invalid route (P1).
BOTTOM = _Bottom()

Path = Tuple[int, ...]
"""A valid path: tuple of node ids, source first.  ``()`` is the empty path."""


def is_valid_path(p) -> bool:
    """True for a tuple path, False for ⊥."""
    return p is not BOTTOM


def is_simple(p) -> bool:
    """A path is simple when it visits no node twice (⊥ counts as simple)."""
    if p is BOTTOM:
        return True
    return len(set(p)) == len(p)


def src(p):
    """Source (owner) of a path; ``None`` for the empty path and ⊥."""
    if p is BOTTOM or len(p) == 0:
        return None
    return p[0]


def dst(p):
    """Destination of a path; ``None`` for the empty path and ⊥."""
    if p is BOTTOM or len(p) == 0:
        return None
    return p[-1]


def length(p) -> int:
    """Number of edges in the path (0 for ``[]``; 0 for ⊥ by convention)."""
    if p is BOTTOM or len(p) == 0:
        return 0
    return len(p) - 1


def can_extend(i: int, j: int, p) -> bool:
    """Is ``(i, j) :: p`` an admissible, loop-free extension? (P3 guards)

    Admissible means the edge plugs into the head of ``p`` (or ``p`` is
    the empty path), and loop-free means ``i`` does not already appear.
    """
    if p is BOTTOM:
        return False
    if len(p) == 0:
        return i != j
    return j == p[0] and i not in p


def extend(i: int, j: int, p):
    """Compute ``(i, j) :: p`` following P3: ⊥ when the guards fail.

    * ``⊥`` if ``i`` already appears in ``p`` (loop),
    * ``⊥`` if ``j`` is not the source of ``p`` (stale/mismatched route),
    * ``(i,) + p`` otherwise (with ``p = ()`` extending to ``(i, j)``).
    """
    if not can_extend(i, j, p):
        return BOTTOM
    if len(p) == 0:
        return (i, j)
    return (i,) + p


def weight(algebra, network, p):
    """Fold the adjacency matrix along ``p`` (Section 5.1).

    ``network`` is a :class:`repro.core.state.Network`; ``algebra`` is
    its routing algebra (passed separately so path algebras can compute
    weights of their *underlying* algebra when needed).
    """
    if p is BOTTOM:
        return algebra.invalid
    if len(p) == 0:
        return algebra.trivial
    acc = algebra.trivial
    # fold right-to-left: weight((i,j)::q) = A_ij(weight(q))
    for idx in range(len(p) - 2, -1, -1):
        i, j = p[idx], p[idx + 1]
        acc = network.edge(i, j)(acc)
    return acc


def all_simple_paths_to(network, dest: int, max_len: Optional[int] = None) -> Iterator[Path]:
    """Enumerate every simple path in the topology ending at ``dest``.

    Includes single-edge paths and longer ones; does *not* include the
    empty path.  Paths are enumerated over the edges actually present in
    ``network`` (absent edges weigh ∞̄, so they generate no consistent
    route other than ∞̄ itself, which is handled separately).

    ``max_len`` optionally caps the number of edges (defaults to n - 1,
    the maximum for a simple path).
    """
    n = network.n
    cap = max_len if max_len is not None else n - 1
    # predecessor adjacency: which i have a real edge i -> j
    preds: List[List[int]] = [[] for _ in range(n)]
    for (i, j) in network.present_edges():
        preds[j].append(i)

    def grow(path: Path) -> Iterator[Path]:
        if length(path) >= cap:
            return
        head = path[0]
        for i in preds[head]:
            if i not in path:
                new = (i,) + path
                yield new
                yield from grow(new)

    seed: Path = (dest,)
    # single node is not a path with edges; start growing from it
    yield from grow(seed)


def enumerate_consistent_routes(algebra, network, dest: Optional[int] = None):
    """Enumerate ``S_c = {weight(p) | p ∈ 𝒫}`` (Section 5.1).

    Returns a list of distinct routes.  Always contains ∞̄ (= weight(⊥))
    and 0̄ (= weight([])).  When ``dest`` is given, only paths ending at
    that destination are folded — this is the per-destination carrier
    used by the per-column fixed-point enumeration.
    """
    seen = {}

    def note(r):
        for key in seen:
            if algebra.equal(seen[key], r):
                return
        seen[len(seen)] = r

    note(algebra.invalid)
    note(algebra.trivial)
    dests = [dest] if dest is not None else list(range(network.n))
    for d in dests:
        for p in all_simple_paths_to(network, d):
            note(weight(algebra, network, p))
    return list(seen.values())
