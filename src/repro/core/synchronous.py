"""The synchronous Bellman-Ford operator σ and its iteration (Sections 2.2–2.3).

One synchronous round is

    σ(X) = A(X) ⊕ I

element-wise::

    σ(X)[i][j] = ⨁_k A[i][k]( X[k][j] )  ⊕  I[i][j]

i.e. node ``i``'s new route to ``j`` is the best of the policy-extended
routes its neighbours offered, with the trivial route forced on the
diagonal (Lemma 1: σ(X)[i][i] = 0̄ always).

A state is *stable* when ``σ(X) = X`` (Definition 4); the synchronous
computation converges when some iterate reaches a stable state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from .state import Network, RoutingState


def sigma(network: Network, state: RoutingState) -> RoutingState:
    """Apply one synchronous round: ``σ(X) = A(X) ⊕ I``."""
    alg = network.algebra
    n = network.n
    new_rows = []
    for i in range(n):
        row = []
        in_neighbours = network.neighbours_in(i)
        for j in range(n):
            if i == j:
                # Lemma 1: the diagonal is always the trivial route, since
                # 0̄ annihilates ⊕.
                row.append(alg.trivial)
                continue
            candidate = alg.best(
                network.edge(i, k)(state.get(k, j)) for k in in_neighbours
            )
            row.append(candidate)
        new_rows.append(row)
    return RoutingState(new_rows)


def sigma_entry(network: Network, state: RoutingState, i: int, j: int):
    """A single entry of σ(X) — Eq. 5 of the paper.

    Exposed separately because δ (the asynchronous operator) recomputes
    individual entries against *per-neighbour historical* states.
    """
    alg = network.algebra
    if i == j:
        return alg.trivial
    return alg.best(
        network.edge(i, k)(state.get(k, j)) for k in network.neighbours_in(i)
    )


def is_stable(network: Network, state: RoutingState) -> bool:
    """Definition 4: ``X`` is stable iff ``σ(X) = X``."""
    return sigma(network, state).equals(state, network.algebra)


@dataclass
class SyncResult:
    """Outcome of a synchronous fixed-point iteration."""

    converged: bool
    rounds: int                       #: number of σ applications performed
    state: RoutingState               #: final state reached
    trajectory: Optional[List[RoutingState]] = field(default=None, repr=False)

    @property
    def fixed_point(self) -> RoutingState:
        if not self.converged:
            raise ValueError("iteration did not converge; no fixed point")
        return self.state


def iterate_sigma(network: Network, start: RoutingState, max_rounds: int = 10_000,
                  keep_trajectory: bool = False,
                  detect_cycles: bool = False) -> SyncResult:
    """Iterate σ from ``start`` until a fixed point (or ``max_rounds``).

    With ``detect_cycles`` the iteration also stops early when a state
    repeats (σ has entered a limit cycle — e.g. BAD GADGET oscillation),
    reporting ``converged=False``.

    Returns a :class:`SyncResult`; ``result.rounds`` is the number of σ
    applications it took to *reach* the fixed point (so a stable start
    gives ``rounds == 0``).
    """
    alg = network.algebra
    current = start
    trajectory = [start] if keep_trajectory else None
    seen = {current: 0} if detect_cycles else None
    for k in range(max_rounds):
        nxt = sigma(network, current)
        if keep_trajectory:
            trajectory.append(nxt)
        if nxt.equals(current, alg):
            return SyncResult(True, k, current, trajectory)
        if detect_cycles:
            if nxt in seen:
                return SyncResult(False, k + 1, nxt, trajectory)
            seen[nxt] = k + 1
        current = nxt
    return SyncResult(False, max_rounds, current, trajectory)


def synchronous_fixed_point(network: Network,
                            max_rounds: int = 10_000) -> RoutingState:
    """Fixed point of σ starting from the identity matrix ``I``.

    The canonical "clean start" computation; raises if no fixed point is
    found within ``max_rounds`` (which for a strictly increasing algebra
    indicates a bug, by Theorem 7 / 11).
    """
    result = iterate_sigma(network, RoutingState.identity(network.algebra, network.n),
                           max_rounds=max_rounds)
    if not result.converged:
        raise RuntimeError(
            f"σ failed to reach a fixed point within {max_rounds} rounds on "
            f"{network!r}")
    return result.state
