"""The synchronous Bellman-Ford operator σ and its iteration (Sections 2.2–2.3).

One synchronous round is

    σ(X) = A(X) ⊕ I

element-wise::

    σ(X)[i][j] = ⨁_k A[i][k]( X[k][j] )  ⊕  I[i][j]

i.e. node ``i``'s new route to ``j`` is the best of the policy-extended
routes its neighbours offered, with the trivial route forced on the
diagonal (Lemma 1: σ(X)[i][i] = 0̄ always).

A state is *stable* when ``σ(X) = X`` (Definition 4); the synchronous
computation converges when some iterate reaches a stable state.

Execution engines
-----------------

Two engines implement the iteration:

* ``engine="naive"`` — the literal definition: every round recomputes
  all ``n²`` entries and a full ``equals`` scan detects the fixed
  point.  Kept as the executable form of Eq. 5 and as the reference the
  incremental engine is verified against.
* ``engine="incremental"`` (default) — delta propagation via
  :mod:`repro.core.incremental`: after a seeding full round, each round
  recomputes only the entries whose in-neighbours' routes changed in
  the previous round (the *dirty set*), shares untouched row objects
  structurally, and declares the fixed point the moment the dirty set
  is empty — no per-round equality scan.
* ``engine="vectorized"`` — for finite algebras
  (:func:`~repro.core.vectorized.supports_vectorized`), routes are
  int-encoded and σ runs as a numpy table-gather min-product over the
  dirty columns (:mod:`repro.core.vectorized`).  Algebras without a
  finite encoding silently fall back to the incremental engine, so the
  selector is always safe to request.
* ``engine="parallel"`` — the vectorized engine's column-independent
  round sharded over a pool of worker processes against shared-memory
  code matrices (:mod:`repro.core.parallel`).  Falls back to the
  vectorized engine (and transitively to incremental) when the algebra
  has no finite encoding, when the platform lacks shared memory, or
  when ``workers`` resolves to ≤ 1 — e.g. auto mode on a single-CPU
  host or a problem below :data:`repro.core.parallel.PARALLEL_MIN_N`.
* ``engine="batched"`` — the multi-trial tensor engine
  (:class:`~repro.core.vectorized.BatchedVectorizedEngine`): many
  starts stacked along a batch axis, one kernel invocation per round
  for all of them.  Built for experiment grids
  (:func:`~repro.core.asynchronous.absolute_convergence_experiment`);
  a single run through this selector is the degenerate B = 1 batch,
  and non-finite algebras fall down the ladder as usual.

The six-engine ladder (naive → incremental → vectorized → parallel →
batched → remote, the last sharding destination columns over TCP
workers) trades generality for speed rung by rung, but every rung
computes exactly σ each round, so trajectories and fixed points are
identical — ``tests/core/test_engine_equivalence.py`` is the
differential oracle holding them to it.

Both engines read neighbour structure from the cached
:class:`~repro.core.state.NetworkTopology`, which is invalidated by
``set_edge`` / ``remove_edge``, so iterating again after a topology
change is always safe.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from .capabilities import warn_deprecated
from .incremental import sigma_propagate, sigma_with_dirty
from .state import Network, RoutingState

#: The engine selector vocabulary, shared by every σ/δ driver, the
#: simulator, the CLI and the test matrix — ordered as the ladder.
ENGINES = ("naive", "incremental", "vectorized", "parallel", "batched",
           "remote")


def sigma(network: Network, state: RoutingState) -> RoutingState:
    """Apply one synchronous round: ``σ(X) = A(X) ⊕ I``."""
    alg = network.algebra
    n = network.n
    topo = network.adjacency.topology
    best, trivial = alg.best, alg.trivial
    rows = state.rows
    new_rows = []
    for i in range(n):
        in_edges = topo.in_edges[i]
        # Lemma 1: the diagonal is always the trivial route, since 0̄
        # annihilates ⊕.
        row = [trivial if i == j else
               best(fn(rows[k][j]) for (k, fn) in in_edges)
               for j in range(n)]
        new_rows.append(row)
    return RoutingState.adopt(new_rows)


def sigma_entry(network: Network, state: RoutingState, i: int, j: int):
    """A single entry of σ(X) — Eq. 5 of the paper.

    Exposed separately because δ (the asynchronous operator) recomputes
    individual entries against *per-neighbour historical* states.
    """
    alg = network.algebra
    if i == j:
        return alg.trivial
    in_edges = network.adjacency.topology.in_edges[i]
    return alg.best(fn(state.rows[k][j]) for (k, fn) in in_edges)


def is_stable(network: Network, state: RoutingState) -> bool:
    """Definition 4: ``X`` is stable iff ``σ(X) = X``."""
    _, dirty = sigma_with_dirty(network, state)
    return not dirty


@dataclass
class SyncResult:
    """Outcome of a synchronous fixed-point iteration."""

    converged: bool
    rounds: int                       #: number of σ applications performed
    state: RoutingState               #: final state reached
    trajectory: Optional[List[RoutingState]] = field(default=None, repr=False)

    @property
    def fixed_point(self) -> RoutingState:
        if not self.converged:
            raise ValueError("iteration did not converge; no fixed point")
        return self.state


def _iterate_sigma_resolved(network: Network, start: RoutingState,
                            rung: str, max_rounds: int = 10_000,
                            keep_trajectory: bool = False,
                            detect_cycles: bool = False,
                            workers: Optional[int] = None,
                            engine_obj=None) -> SyncResult:
    """Run the σ iteration on one *already negotiated* ladder rung.

    ``rung`` must be the ``chosen`` field of an
    :class:`~repro.core.capabilities.EngineResolution` — no further
    fallback happens here.  ``engine_obj`` optionally reuses a prebuilt
    vectorized/parallel/batched engine (the
    :class:`~repro.session.RoutingSession` passes its managed
    instances); without one, pool-based rungs build and tear down their
    own resources per call.
    """
    if rung == "remote":
        # local import: remote imports SyncResult from this module
        from .remote import iterate_sigma_remote
        return iterate_sigma_remote(
            network, start, max_rounds=max_rounds,
            keep_trajectory=keep_trajectory,
            detect_cycles=detect_cycles, engine=engine_obj,
            workers=workers)
    if rung == "batched":
        # local import: vectorized imports SyncResult from this module
        from .vectorized import iterate_sigma_batched
        return iterate_sigma_batched(
            network, [start], max_rounds=max_rounds,
            keep_trajectory=keep_trajectory,
            detect_cycles=detect_cycles, engine=engine_obj)[0]
    if rung == "parallel":
        # local import: parallel imports SyncResult from this module
        from .parallel import iterate_sigma_parallel
        return iterate_sigma_parallel(
            network, start, max_rounds=max_rounds,
            keep_trajectory=keep_trajectory,
            detect_cycles=detect_cycles, engine=engine_obj,
            workers=workers)
    if rung == "vectorized":
        # local import: vectorized imports SyncResult from this module
        from .vectorized import iterate_sigma_vectorized
        return iterate_sigma_vectorized(
            network, start, max_rounds=max_rounds,
            keep_trajectory=keep_trajectory, detect_cycles=detect_cycles,
            engine=engine_obj)
    incremental = rung == "incremental"
    alg = network.algebra
    current = start
    trajectory = [start] if keep_trajectory else None
    seen = {current: 0} if detect_cycles else None
    dirty = None
    for k in range(max_rounds):
        if incremental:
            if dirty is None:
                nxt, dirty = sigma_with_dirty(network, current)
            else:
                nxt, dirty = sigma_propagate(network, current, dirty)
            stable = not dirty
        else:
            nxt = sigma(network, current)
            stable = nxt.equals(current, alg)
        if keep_trajectory:
            trajectory.append(nxt)
        if stable:
            return SyncResult(True, k, current, trajectory)
        if detect_cycles:
            if nxt in seen:
                return SyncResult(False, k + 1, nxt, trajectory)
            seen[nxt] = k + 1
        current = nxt
    return SyncResult(False, max_rounds, current, trajectory)


def iterate_sigma(network: Network, start: RoutingState, max_rounds: int = 10_000,
                  keep_trajectory: bool = False,
                  detect_cycles: bool = False,
                  engine: str = "incremental",
                  workers: Optional[int] = None) -> SyncResult:
    """Iterate σ from ``start`` until a fixed point (or ``max_rounds``).

    .. deprecated::
        This free function is a thin shim over
        :meth:`repro.session.RoutingSession.sigma`, which negotiates the
        engine rung explicitly (:class:`~repro.core.capabilities.EngineResolution`
        instead of silent fallback), manages pool/shared-memory
        lifetimes, and returns a typed report.  It delegates there and
        emits a :class:`DeprecationWarning`; results are bit-identical.

    With ``detect_cycles`` the iteration also stops early when a state
    repeats (σ has entered a limit cycle — e.g. BAD GADGET oscillation),
    reporting ``converged=False``.  ``engine`` selects one rung of the
    ladder (see the module docstring); unsupported requests fall down
    the ladder exactly as before, now with the skipped rungs logged on
    the ``repro.engine`` logger.  ``workers`` sizes the parallel pool.

    Returns a :class:`SyncResult`; ``result.rounds`` is the number of σ
    applications it took to *reach* the fixed point (so a stable start
    gives ``rounds == 0``).
    """
    warn_deprecated("iterate_sigma()", "RoutingSession.sigma()")
    from ..session import EngineSpec, RoutingSession
    with RoutingSession(network, EngineSpec(engine, workers=workers)) as s:
        return s.sigma(start, max_rounds=max_rounds,
                       keep_trajectory=keep_trajectory,
                       detect_cycles=detect_cycles).result


def synchronous_fixed_point(network: Network,
                            max_rounds: int = 10_000) -> RoutingState:
    """Fixed point of σ starting from the identity matrix ``I``.

    The canonical "clean start" computation; raises if no fixed point is
    found within ``max_rounds`` (which for a strictly increasing algebra
    indicates a bug, by Theorem 7 / 11).
    """
    result = _iterate_sigma_resolved(
        network, RoutingState.identity(network.algebra, network.n),
        "incremental", max_rounds=max_rounds)
    if not result.converged:
        raise RuntimeError(
            f"σ failed to reach a fixed point within {max_rounds} rounds on "
            f"{network!r}")
    return result.state
