"""The synchronous Bellman-Ford operator σ and its iteration (Sections 2.2–2.3).

One synchronous round is

    σ(X) = A(X) ⊕ I

element-wise::

    σ(X)[i][j] = ⨁_k A[i][k]( X[k][j] )  ⊕  I[i][j]

i.e. node ``i``'s new route to ``j`` is the best of the policy-extended
routes its neighbours offered, with the trivial route forced on the
diagonal (Lemma 1: σ(X)[i][i] = 0̄ always).

A state is *stable* when ``σ(X) = X`` (Definition 4); the synchronous
computation converges when some iterate reaches a stable state.

Execution engines
-----------------

Two engines implement the iteration:

* ``engine="naive"`` — the literal definition: every round recomputes
  all ``n²`` entries and a full ``equals`` scan detects the fixed
  point.  Kept as the executable form of Eq. 5 and as the reference the
  incremental engine is verified against.
* ``engine="incremental"`` (default) — delta propagation via
  :mod:`repro.core.incremental`: after a seeding full round, each round
  recomputes only the entries whose in-neighbours' routes changed in
  the previous round (the *dirty set*), shares untouched row objects
  structurally, and declares the fixed point the moment the dirty set
  is empty — no per-round equality scan.
* ``engine="vectorized"`` — for finite algebras
  (:func:`~repro.core.vectorized.supports_vectorized`), routes are
  int-encoded and σ runs as a numpy table-gather min-product over the
  dirty columns (:mod:`repro.core.vectorized`).  Algebras without a
  finite encoding silently fall back to the incremental engine, so the
  selector is always safe to request.
* ``engine="parallel"`` — the vectorized engine's column-independent
  round sharded over a pool of worker processes against shared-memory
  code matrices (:mod:`repro.core.parallel`).  Falls back to the
  vectorized engine (and transitively to incremental) when the algebra
  has no finite encoding, when the platform lacks shared memory, or
  when ``workers`` resolves to ≤ 1 — e.g. auto mode on a single-CPU
  host or a problem below :data:`repro.core.parallel.PARALLEL_MIN_N`.
* ``engine="batched"`` — the multi-trial tensor engine
  (:class:`~repro.core.vectorized.BatchedVectorizedEngine`): many
  starts stacked along a batch axis, one kernel invocation per round
  for all of them.  Built for experiment grids
  (:func:`~repro.core.asynchronous.absolute_convergence_experiment`);
  a single run through this selector is the degenerate B = 1 batch,
  and non-finite algebras fall down the ladder as usual.

The five-engine ladder (naive → incremental → vectorized → parallel →
batched) trades generality for speed rung by rung, but every rung
computes exactly σ each round, so trajectories and fixed points are
identical — ``tests/core/test_engine_equivalence.py`` is the
differential oracle holding them to it.

Both engines read neighbour structure from the cached
:class:`~repro.core.state.NetworkTopology`, which is invalidated by
``set_edge`` / ``remove_edge``, so iterating again after a topology
change is always safe.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from .incremental import sigma_propagate, sigma_with_dirty
from .state import Network, RoutingState

#: The engine selector vocabulary, shared by every σ/δ driver, the
#: simulator, the CLI and the test matrix — ordered as the ladder.
ENGINES = ("naive", "incremental", "vectorized", "parallel", "batched")


def sigma(network: Network, state: RoutingState) -> RoutingState:
    """Apply one synchronous round: ``σ(X) = A(X) ⊕ I``."""
    alg = network.algebra
    n = network.n
    topo = network.adjacency.topology
    best, trivial = alg.best, alg.trivial
    rows = state.rows
    new_rows = []
    for i in range(n):
        in_edges = topo.in_edges[i]
        # Lemma 1: the diagonal is always the trivial route, since 0̄
        # annihilates ⊕.
        row = [trivial if i == j else
               best(fn(rows[k][j]) for (k, fn) in in_edges)
               for j in range(n)]
        new_rows.append(row)
    return RoutingState.adopt(new_rows)


def sigma_entry(network: Network, state: RoutingState, i: int, j: int):
    """A single entry of σ(X) — Eq. 5 of the paper.

    Exposed separately because δ (the asynchronous operator) recomputes
    individual entries against *per-neighbour historical* states.
    """
    alg = network.algebra
    if i == j:
        return alg.trivial
    in_edges = network.adjacency.topology.in_edges[i]
    return alg.best(fn(state.rows[k][j]) for (k, fn) in in_edges)


def is_stable(network: Network, state: RoutingState) -> bool:
    """Definition 4: ``X`` is stable iff ``σ(X) = X``."""
    _, dirty = sigma_with_dirty(network, state)
    return not dirty


@dataclass
class SyncResult:
    """Outcome of a synchronous fixed-point iteration."""

    converged: bool
    rounds: int                       #: number of σ applications performed
    state: RoutingState               #: final state reached
    trajectory: Optional[List[RoutingState]] = field(default=None, repr=False)

    @property
    def fixed_point(self) -> RoutingState:
        if not self.converged:
            raise ValueError("iteration did not converge; no fixed point")
        return self.state


def iterate_sigma(network: Network, start: RoutingState, max_rounds: int = 10_000,
                  keep_trajectory: bool = False,
                  detect_cycles: bool = False,
                  engine: str = "incremental",
                  workers: Optional[int] = None) -> SyncResult:
    """Iterate σ from ``start`` until a fixed point (or ``max_rounds``).

    With ``detect_cycles`` the iteration also stops early when a state
    repeats (σ has entered a limit cycle — e.g. BAD GADGET oscillation),
    reporting ``converged=False``.

    ``engine`` selects one rung of the ladder: ``"incremental"``
    (dirty-set delta propagation, the default), ``"naive"`` (full
    recompute + equality scan per round), ``"vectorized"``
    (int-encoded numpy engine for finite algebras, incremental fallback
    otherwise), ``"parallel"`` (the vectorized round sharded by
    destination columns over ``workers`` processes, vectorized fallback
    when not worthwhile or unsupported) or ``"batched"`` (the
    multi-trial tensor engine run as a B = 1 batch, parallel fallback
    for non-finite algebras); see the module docstring.  All
    produce identical iterates.  ``workers`` applies to
    ``engine="parallel"`` only: ``None`` sizes the pool to the host's
    CPUs (falling back entirely on small problems or single-CPU
    hosts), an explicit count ≥ 2 forces a pool of that size.

    Returns a :class:`SyncResult`; ``result.rounds`` is the number of σ
    applications it took to *reach* the fixed point (so a stable start
    gives ``rounds == 0``).
    """
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}")
    if engine == "batched":
        # local import: vectorized imports SyncResult from this module
        from .vectorized import iterate_sigma_batched, supports_vectorized
        if supports_vectorized(network.algebra):
            return iterate_sigma_batched(
                network, [start], max_rounds=max_rounds,
                keep_trajectory=keep_trajectory,
                detect_cycles=detect_cycles)[0]
        engine = "parallel"              # documented fallback ladder
    if engine == "parallel":
        # local import: parallel imports SyncResult from this module
        from .parallel import iterate_sigma_parallel, parallel_workers
        effective = parallel_workers(network, workers)
        if effective is not None:
            return iterate_sigma_parallel(
                network, start, max_rounds=max_rounds,
                keep_trajectory=keep_trajectory,
                detect_cycles=detect_cycles, workers=effective)
        engine = "vectorized"            # documented fallback ladder
    if engine == "vectorized":
        # local import: vectorized imports SyncResult from this module
        from .vectorized import iterate_sigma_vectorized, supports_vectorized
        if supports_vectorized(network.algebra):
            return iterate_sigma_vectorized(
                network, start, max_rounds=max_rounds,
                keep_trajectory=keep_trajectory, detect_cycles=detect_cycles)
        engine = "incremental"           # documented non-finite fallback
    incremental = engine == "incremental"
    alg = network.algebra
    current = start
    trajectory = [start] if keep_trajectory else None
    seen = {current: 0} if detect_cycles else None
    dirty = None
    for k in range(max_rounds):
        if incremental:
            if dirty is None:
                nxt, dirty = sigma_with_dirty(network, current)
            else:
                nxt, dirty = sigma_propagate(network, current, dirty)
            stable = not dirty
        else:
            nxt = sigma(network, current)
            stable = nxt.equals(current, alg)
        if keep_trajectory:
            trajectory.append(nxt)
        if stable:
            return SyncResult(True, k, current, trajectory)
        if detect_cycles:
            if nxt in seen:
                return SyncResult(False, k + 1, nxt, trajectory)
            seen[nxt] = k + 1
        current = nxt
    return SyncResult(False, max_rounds, current, trajectory)


def synchronous_fixed_point(network: Network,
                            max_rounds: int = 10_000) -> RoutingState:
    """Fixed point of σ starting from the identity matrix ``I``.

    The canonical "clean start" computation; raises if no fixed point is
    found within ``max_rounds`` (which for a strictly increasing algebra
    indicates a bug, by Theorem 7 / 11).
    """
    result = iterate_sigma(network, RoutingState.identity(network.algebra, network.n),
                           max_rounds=max_rounds)
    if not result.converged:
        raise RuntimeError(
            f"σ failed to reach a fixed point within {max_rounds} rounds on "
            f"{network!r}")
    return result.state
