"""Executable algebra-law verification (Table 1 as code)."""

from .properties import (
    AlgebraReport,
    LawCheck,
    check_associative,
    check_commutative,
    check_distributive,
    check_increasing,
    check_invalid_fixed_point,
    check_invalid_identity,
    check_path_laws,
    check_selective,
    check_strictly_increasing,
    check_trivial_annihilator,
    verify_algebra,
    verify_path_algebra,
)
from .suite import convergence_guarantee, verify_network

__all__ = [
    "AlgebraReport",
    "LawCheck",
    "check_associative",
    "check_commutative",
    "check_distributive",
    "check_increasing",
    "check_invalid_fixed_point",
    "check_invalid_identity",
    "check_path_laws",
    "check_selective",
    "check_strictly_increasing",
    "check_trivial_annihilator",
    "convergence_guarantee",
    "verify_algebra",
    "verify_network",
    "verify_path_algebra",
]
