"""Executable algebra laws — Table 1 as code.

The paper's Agda development *proves* these laws once and for all; in
Python we *check* them, exhaustively over finite carriers and by
randomised sampling over infinite ones.  Each checker returns a
:class:`LawCheck` carrying a verdict, the number of cases examined and
a counterexample when the law fails — the moral equivalent of the
type-checker rejecting an ill-formed algebra.

Two law groups, exactly as Table 1 draws them:

*required* (any routing algebra)
    ⊕ associative, ⊕ commutative, ⊕ selective, 0̄ annihilates ⊕,
    ∞̄ is the identity of ⊕, ∞̄ is a fixed point of every f ∈ F;

*optional* (the convergence-relevant hierarchy)
    F increasing, F strictly increasing, F distributive over ⊕.

Path algebras additionally get P1–P3 (Definition 14) via
:func:`check_path_laws`.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from ..core.algebra import EdgeFunction, PathAlgebra, Route, RoutingAlgebra
from ..core.paths import BOTTOM, can_extend, extend, is_simple, src


@dataclass
class LawCheck:
    """Verdict for one law."""

    law: str
    holds: bool
    cases: int
    counterexample: Optional[tuple] = None

    def __bool__(self) -> bool:
        return self.holds

    def describe(self) -> str:
        mark = "✓" if self.holds else "✗"
        extra = ""
        if not self.holds and self.counterexample is not None:
            extra = f"  counterexample: {self.counterexample!r}"
        return f"{mark} {self.law} ({self.cases} cases){extra}"


def _route_universe(algebra: RoutingAlgebra, rng: random.Random,
                    samples: int) -> List[Route]:
    """Exhaustive carrier for finite algebras, else a random sample.

    Always includes 0̄ and ∞̄ — most law violations hide at the
    distinguished elements.
    """
    if algebra.is_finite:
        return list(algebra.routes())
    universe = [algebra.trivial, algebra.invalid]
    for _ in range(samples):
        universe.append(algebra.sample_route(rng))
    return universe


def _edge_universe(algebra: RoutingAlgebra, rng: random.Random,
                   count: int,
                   edge_functions: Optional[Sequence[EdgeFunction]] = None
                   ) -> List[EdgeFunction]:
    if edge_functions is not None:
        return list(edge_functions)
    return [algebra.sample_edge_function(rng) for _ in range(count)]


# ----------------------------------------------------------------------
# Required laws
# ----------------------------------------------------------------------


def check_associative(algebra: RoutingAlgebra,
                      routes: Sequence[Route]) -> LawCheck:
    """``a ⊕ (b ⊕ c) = (a ⊕ b) ⊕ c``."""
    out = LawCheck("⊕ associative", True, 0)
    for a, b, c in itertools.product(routes, repeat=3):
        out.cases += 1
        lhs = algebra.choice(a, algebra.choice(b, c))
        rhs = algebra.choice(algebra.choice(a, b), c)
        if not algebra.equal(lhs, rhs):
            out.holds, out.counterexample = False, (a, b, c)
            break
    return out


def check_commutative(algebra: RoutingAlgebra,
                      routes: Sequence[Route]) -> LawCheck:
    """``a ⊕ b = b ⊕ a``."""
    out = LawCheck("⊕ commutative", True, 0)
    for a, b in itertools.product(routes, repeat=2):
        out.cases += 1
        if not algebra.equal(algebra.choice(a, b), algebra.choice(b, a)):
            out.holds, out.counterexample = False, (a, b)
            break
    return out


def check_selective(algebra: RoutingAlgebra,
                    routes: Sequence[Route]) -> LawCheck:
    """``a ⊕ b ∈ {a, b}``."""
    out = LawCheck("⊕ selective", True, 0)
    for a, b in itertools.product(routes, repeat=2):
        out.cases += 1
        c = algebra.choice(a, b)
        if not (algebra.equal(c, a) or algebra.equal(c, b)):
            out.holds, out.counterexample = False, (a, b, c)
            break
    return out


def check_trivial_annihilator(algebra: RoutingAlgebra,
                              routes: Sequence[Route]) -> LawCheck:
    """``a ⊕ 0̄ = 0̄ = 0̄ ⊕ a``."""
    out = LawCheck("0̄ annihilates ⊕", True, 0)
    zero = algebra.trivial
    for a in routes:
        out.cases += 1
        if not (algebra.equal(algebra.choice(a, zero), zero)
                and algebra.equal(algebra.choice(zero, a), zero)):
            out.holds, out.counterexample = False, (a,)
            break
    return out


def check_invalid_identity(algebra: RoutingAlgebra,
                           routes: Sequence[Route]) -> LawCheck:
    """``a ⊕ ∞̄ = a = ∞̄ ⊕ a``."""
    out = LawCheck("∞̄ is identity of ⊕", True, 0)
    inf = algebra.invalid
    for a in routes:
        out.cases += 1
        if not (algebra.equal(algebra.choice(a, inf), a)
                and algebra.equal(algebra.choice(inf, a), a)):
            out.holds, out.counterexample = False, (a,)
            break
    return out


def check_invalid_fixed_point(algebra: RoutingAlgebra,
                              edges: Sequence[EdgeFunction]) -> LawCheck:
    """``f(∞̄) = ∞̄`` for every sampled f."""
    out = LawCheck("∞̄ fixed point of F", True, 0)
    for f in edges:
        out.cases += 1
        if not algebra.equal(f(algebra.invalid), algebra.invalid):
            out.holds, out.counterexample = False, (f, f(algebra.invalid))
            break
    return out


# ----------------------------------------------------------------------
# Optional laws (the convergence hierarchy)
# ----------------------------------------------------------------------


def check_increasing(algebra: RoutingAlgebra, routes: Sequence[Route],
                     edges: Sequence[EdgeFunction]) -> LawCheck:
    """Definition 2: ``a ≤ f(a)`` for all a, f."""
    out = LawCheck("F increasing", True, 0)
    for f in edges:
        for a in routes:
            out.cases += 1
            if not algebra.leq(a, f(a)):
                out.holds, out.counterexample = False, (f, a, f(a))
                return out
    return out


def check_strictly_increasing(algebra: RoutingAlgebra, routes: Sequence[Route],
                              edges: Sequence[EdgeFunction]) -> LawCheck:
    """Definition 3: ``a < f(a)`` for all a ≠ ∞̄, f."""
    out = LawCheck("F strictly increasing", True, 0)
    for f in edges:
        for a in routes:
            if algebra.equal(a, algebra.invalid):
                continue
            out.cases += 1
            if not algebra.lt(a, f(a)):
                out.holds, out.counterexample = False, (f, a, f(a))
                return out
    return out


def check_distributive(algebra: RoutingAlgebra, routes: Sequence[Route],
                       edges: Sequence[EdgeFunction]) -> LawCheck:
    """Eq. 1: ``f(a ⊕ b) = f(a) ⊕ f(b)`` — the *classical* assumption.

    Policy-rich algebras are exactly those for which this check FAILS;
    the Table 1 bench prints the failing triple as the paper's Eq. 2
    worked example does.
    """
    out = LawCheck("F distributes over ⊕", True, 0)
    for f in edges:
        for a, b in itertools.product(routes, repeat=2):
            out.cases += 1
            lhs = f(algebra.choice(a, b))
            rhs = algebra.choice(f(a), f(b))
            if not algebra.equal(lhs, rhs):
                out.holds, out.counterexample = False, (f, a, b, lhs, rhs)
                return out
    return out


# ----------------------------------------------------------------------
# Path-algebra laws (Definition 14)
# ----------------------------------------------------------------------


def check_path_laws(algebra: PathAlgebra, routes: Sequence[Route],
                    edge_pairs: Sequence[Tuple[int, int, EdgeFunction]]
                    ) -> List[LawCheck]:
    """P1–P3 plus simplicity of every projected path.

    ``edge_pairs`` are ``(i, j, A_ij)`` triples — P3 relates the path of
    an extended route to the extending edge, so the checker must know
    which edge each function represents.
    """
    p1 = LawCheck("P1: x = ∞̄ ⇔ path(x) = ⊥", True, 0)
    p2 = LawCheck("P2: x = 0̄ ⇒ path(x) = []", True, 0)
    simple = LawCheck("path(x) is always simple", True, 0)
    for x in routes:
        p1.cases += 1
        if (algebra.equal(x, algebra.invalid)) != (algebra.path(x) is BOTTOM):
            p1.holds, p1.counterexample = False, (x, algebra.path(x))
        p2.cases += 1
        if algebra.equal(x, algebra.trivial) and algebra.path(x) != ():
            p2.holds, p2.counterexample = False, (x, algebra.path(x))
        simple.cases += 1
        if not is_simple(algebra.path(x)):
            simple.holds, simple.counterexample = False, (x, algebra.path(x))

    p3 = LawCheck("P3: path(A_ij(r)) follows the extension rule", True, 0)
    for (i, j, f) in edge_pairs:
        for r in routes:
            if algebra.equal(r, algebra.invalid):
                continue
            p3.cases += 1
            p = algebra.path(r)
            result = f(r)
            result_path = algebra.path(result)
            if p is BOTTOM:
                continue  # covered by P1
            if i in p or not can_extend(i, j, p):
                expected = BOTTOM
            else:
                expected = extend(i, j, p)
            # A policy may additionally *filter* the route (result ⊥ even
            # when the extension was admissible); that is allowed — what
            # P3 forbids is producing a path other than the extension.
            if result_path is not BOTTOM and result_path != expected:
                p3.holds, p3.counterexample = False, (i, j, r, result_path)
            if expected is BOTTOM and result_path is not BOTTOM:
                p3.holds, p3.counterexample = False, (i, j, r, result_path)
    return [p1, p2, simple, p3]


# ----------------------------------------------------------------------
# Whole-algebra reports
# ----------------------------------------------------------------------


@dataclass
class AlgebraReport:
    """Full Table 1 verdict for one algebra."""

    algebra_name: str
    checks: List[LawCheck] = field(default_factory=list)

    def check(self, law: str) -> LawCheck:
        for c in self.checks:
            if c.law == law:
                return c
        raise KeyError(law)

    def holds(self, law: str) -> bool:
        return self.check(law).holds

    @property
    def is_routing_algebra(self) -> bool:
        """All five required laws (plus ∞̄-fixed-point) hold."""
        required = ["⊕ associative", "⊕ commutative", "⊕ selective",
                    "0̄ annihilates ⊕", "∞̄ is identity of ⊕",
                    "∞̄ fixed point of F"]
        return all(self.holds(law) for law in required)

    @property
    def is_increasing(self) -> bool:
        return self.holds("F increasing")

    @property
    def is_strictly_increasing(self) -> bool:
        return self.holds("F strictly increasing")

    @property
    def is_distributive(self) -> bool:
        return self.holds("F distributes over ⊕")

    def table(self) -> str:
        lines = [f"algebra: {self.algebra_name}"]
        lines.extend("  " + c.describe() for c in self.checks)
        return "\n".join(lines)


def verify_algebra(algebra: RoutingAlgebra,
                   edge_functions: Optional[Sequence[EdgeFunction]] = None,
                   rng: Optional[random.Random] = None,
                   samples: int = 40, edge_samples: int = 12) -> AlgebraReport:
    """Run every Table 1 check against ``algebra``.

    For finite algebras the route axis is exhaustive (the associativity
    check is then a complete |S|³ sweep, as Agda's proof obligations
    would be); infinite algebras get ``samples`` random routes plus the
    distinguished elements.
    """
    rng = rng or random.Random(0)
    routes = _route_universe(algebra, rng, samples)
    edges = _edge_universe(algebra, rng, edge_samples, edge_functions)
    report = AlgebraReport(algebra.name)
    report.checks.append(check_associative(algebra, routes))
    report.checks.append(check_commutative(algebra, routes))
    report.checks.append(check_selective(algebra, routes))
    report.checks.append(check_trivial_annihilator(algebra, routes))
    report.checks.append(check_invalid_identity(algebra, routes))
    report.checks.append(check_invalid_fixed_point(algebra, edges))
    report.checks.append(check_increasing(algebra, routes, edges))
    report.checks.append(check_strictly_increasing(algebra, routes, edges))
    report.checks.append(check_distributive(algebra, routes, edges))
    return report


def verify_path_algebra(algebra: PathAlgebra,
                        edge_pairs: Sequence[Tuple[int, int, EdgeFunction]],
                        rng: Optional[random.Random] = None,
                        samples: int = 40) -> AlgebraReport:
    """Table 1 checks plus P1–P3 for a path algebra.

    ``edge_pairs`` supplies located edge functions ``(i, j, A_ij)``.
    """
    rng = rng or random.Random(0)
    bare_edges = [f for (_i, _j, f) in edge_pairs]
    report = verify_algebra(algebra, bare_edges, rng, samples=samples)
    routes = _route_universe(algebra, rng, samples)
    report.checks.extend(check_path_laws(algebra, routes, edge_pairs))
    return report
