"""Network-level verification: check the laws of a *deployed* configuration.

:func:`verify_algebra` checks an algebra against sampled edge functions;
real deployments care about the *actual* functions installed in a
topology.  :func:`verify_network` pulls every located edge function out
of a :class:`~repro.core.state.Network` and runs the Table 1 (and, for
path algebras, P1–P3) checks against exactly those.

This is the repo's answer to the paper's point 4 ("the conditions
should be efficiently verifiable ... in polynomial time in the size of
the network"): for a finite algebra the whole suite is
O(|S|³ + |E|·|S|²) — polynomial in both the carrier and the network.
"""

from __future__ import annotations

import random
from typing import Optional

from ..core.algebra import PathAlgebra
from ..core.state import Network
from .properties import AlgebraReport, verify_algebra, verify_path_algebra


def verify_network(network: Network, rng: Optional[random.Random] = None,
                   samples: int = 40) -> AlgebraReport:
    """Verify the algebra laws against the network's installed edges.

    Accepts a :class:`~repro.core.state.Network` or anything carrying
    one as ``.network`` (a :class:`~repro.session.RoutingSession`), so
    ``verify_network(session)`` and ``session.verify()`` coincide.
    """
    network = getattr(network, "network", network)
    rng = rng or random.Random(0)
    located = [(i, j, network.edge(i, j)) for (i, j) in network.present_edges()]
    algebra = network.algebra
    if isinstance(algebra, PathAlgebra):
        return verify_path_algebra(algebra, located, rng, samples=samples)
    return verify_algebra(algebra, [f for (_i, _j, f) in located], rng,
                          samples=samples)


def convergence_guarantee(report: AlgebraReport,
                          finite_carrier: bool,
                          path_algebra: bool) -> str:
    """Map a law report onto the paper's theorems.

    Returns which guarantee (if any) the verified laws deliver:

    * Theorem 7  — finite carrier + strictly increasing;
    * Theorem 11 — path algebra + increasing;
    * otherwise no guarantee from this paper (the protocol may still
      converge — the conditions are sufficient, not necessary).
    """
    if not report.is_routing_algebra:
        return "not a routing algebra: required Table 1 laws fail"
    if path_algebra and report.is_increasing:
        return ("Theorem 11: absolute convergence "
                "(increasing path algebra)")
    if finite_carrier and report.is_strictly_increasing:
        return ("Theorem 7: absolute convergence "
                "(finite, strictly increasing)")
    return "no convergence guarantee from the paper's theorems"
