"""Analysis: fixed points, wedgies, convergence rates, bounds, bisimulation."""

from .bisimulation import (
    BisimulationReport,
    check_bisimulation,
    inherited_convergence,
    project_state,
)
from .convergence import (
    SyncMeasurement,
    measure_sync,
    run_absolute_convergence,
    sample_starts,
)
from .fixed_points import (
    FixedPointCensus,
    MultistartReport,
    enumerate_fixed_points,
    multistart_fixed_points,
    stable_columns,
    sync_oscillates,
)
from .rate import RatePoint, RateSweep, rate_sweep
from .robustness import (
    FailureOutcome,
    RobustnessReport,
    failure_sweep,
    inject_failure,
    partition_probe,
    random_multi_failure_sweep,
)
from .theory import TheoryBounds, dv_bounds, pv_bounds

__all__ = [
    "BisimulationReport",
    "FailureOutcome",
    "FixedPointCensus",
    "MultistartReport",
    "RatePoint",
    "RateSweep",
    "SyncMeasurement",
    "TheoryBounds",
    "dv_bounds",
    "enumerate_fixed_points",
    "measure_sync",
    "multistart_fixed_points",
    "pv_bounds",
    "rate_sweep",
    "run_absolute_convergence",
    "RobustnessReport",
    "check_bisimulation",
    "failure_sweep",
    "inject_failure",
    "partition_probe",
    "random_multi_failure_sweep",
    "inherited_convergence",
    "project_state",
    "sample_starts",
    "stable_columns",
    "sync_oscillates",
]
