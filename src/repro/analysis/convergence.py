"""Convergence measurement utilities used by the benches.

Thin, well-documented wrappers that turn the session facade into the
experiment rows the paper's claims translate to:

* synchronous rounds-to-fixed-point (the Section 8.1 quantity);
* asynchronous steps-to-convergence per schedule;
* full absolute-convergence experiments over sampled (state, schedule)
  grids, with negative-control support.

Everything here delegates to :class:`repro.session.RoutingSession`;
:func:`run_absolute_convergence` survives as a deprecation shim for the
pre-session API.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..core.asynchronous import AbsoluteConvergenceReport, random_state
from ..core.capabilities import warn_deprecated
from ..core.schedule import Schedule
from ..core.state import Network, RoutingState


@dataclass
class SyncMeasurement:
    """Synchronous convergence measurement from one start."""

    converged: bool
    rounds: int
    changed_entries: int          #: total entry changes over the run


def measure_sync(network: Network, start: Optional[RoutingState] = None,
                 max_rounds: int = 10_000) -> SyncMeasurement:
    """Iterate σ and measure rounds + churn.

    Delegates to :meth:`repro.session.RoutingSession.sigma` with
    ``measure_churn=True``: finite algebras take the code-diff fast
    path (:func:`repro.core.vectorized.sigma_churn` — the trajectory is
    never materialised), everything else diffs the object trajectory.
    """
    from ..session import RoutingSession

    with RoutingSession(network) as session:
        report = session.sigma(start, max_rounds=max_rounds,
                               measure_churn=True)
    return SyncMeasurement(report.converged, report.rounds, report.churn)


def sample_starts(network: Network, n_starts: int, seed: int = 0,
                  include_identity: bool = True) -> List[RoutingState]:
    """Arbitrary starting states (plus the clean start) for experiments."""
    rng = random.Random(seed)
    starts: List[RoutingState] = []
    if include_identity:
        starts.append(RoutingState.identity(network.algebra, network.n))
    for _ in range(n_starts):
        starts.append(random_state(network.algebra, network.n, rng))
    return starts


def run_absolute_convergence(network: Network, n_starts: int = 5,
                             schedules: Optional[Sequence[Schedule]] = None,
                             seed: int = 0, max_steps: int = 2_000,
                             engine: str = "incremental",
                             workers: Optional[int] = None
                             ) -> AbsoluteConvergenceReport:
    """The Theorem 7/11 experiment with sensible defaults.

    .. deprecated::
        Thin shim over :meth:`repro.session.RoutingSession.converges`
        (same sampled starts, same schedule zoo, same trial order).
        Delegates there and emits a :class:`DeprecationWarning`;
        results are bit-identical.
    """
    warn_deprecated("run_absolute_convergence()",
                    "RoutingSession.converges()")
    from ..session import EngineSpec, RoutingSession

    with RoutingSession(network, EngineSpec(engine, workers=workers)) as s:
        grid = s.converges(n_starts=n_starts, schedules=schedules,
                           seed=seed, max_steps=max_steps).grid
    return AbsoluteConvergenceReport(grid.runs, grid.all_converged,
                                     list(grid.distinct_fixed_points),
                                     list(grid.convergence_steps))
