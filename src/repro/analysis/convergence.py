"""Convergence measurement utilities used by the benches.

Thin, well-documented wrappers that turn the core engines into the
experiment rows the paper's claims translate to:

* synchronous rounds-to-fixed-point (the Section 8.1 quantity);
* asynchronous steps-to-convergence per schedule;
* full absolute-convergence experiments over sampled (state, schedule)
  grids, with negative-control support.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..core.asynchronous import (
    AbsoluteConvergenceReport,
    absolute_convergence_experiment,
    random_state,
)
from ..core.schedule import Schedule, schedule_zoo
from ..core.state import Network, RoutingState
from ..core.synchronous import iterate_sigma


@dataclass
class SyncMeasurement:
    """Synchronous convergence measurement from one start."""

    converged: bool
    rounds: int
    changed_entries: int          #: total entry changes over the run


def measure_sync(network: Network, start: Optional[RoutingState] = None,
                 max_rounds: int = 10_000) -> SyncMeasurement:
    """Iterate σ and measure rounds + churn.

    Finite algebras take the vectorized path: the trajectory is never
    materialised — consecutive code matrices are diffed with numpy
    (:func:`repro.core.vectorized.sigma_churn`), which counts exactly
    the entry changes the object path counts (equal routes ⇔ equal
    codes under a finite encoding) without the O(rounds · n²) Python
    comparison loop.  Everything else keeps the object path.
    """
    alg = network.algebra
    if start is None:
        start = RoutingState.identity(alg, network.n)
    from ..core.vectorized import sigma_churn, supports_vectorized
    if supports_vectorized(alg):
        converged, rounds, churn = sigma_churn(network, start,
                                               max_rounds=max_rounds)
        return SyncMeasurement(converged, rounds, churn)
    result = iterate_sigma(network, start, max_rounds=max_rounds,
                           keep_trajectory=True)
    churn = 0
    trajectory = result.trajectory or []
    for prev, cur in zip(trajectory, trajectory[1:]):
        for i in range(network.n):
            for j in range(network.n):
                if not alg.equal(prev.get(i, j), cur.get(i, j)):
                    churn += 1
    return SyncMeasurement(result.converged, result.rounds, churn)


def sample_starts(network: Network, n_starts: int, seed: int = 0,
                  include_identity: bool = True) -> List[RoutingState]:
    """Arbitrary starting states (plus the clean start) for experiments."""
    rng = random.Random(seed)
    starts: List[RoutingState] = []
    if include_identity:
        starts.append(RoutingState.identity(network.algebra, network.n))
    for _ in range(n_starts):
        starts.append(random_state(network.algebra, network.n, rng))
    return starts


def run_absolute_convergence(network: Network, n_starts: int = 5,
                             schedules: Optional[Sequence[Schedule]] = None,
                             seed: int = 0, max_steps: int = 2_000,
                             engine: str = "incremental",
                             workers: Optional[int] = None
                             ) -> AbsoluteConvergenceReport:
    """The Theorem 7/11 experiment with sensible defaults.

    ``engine`` is forwarded to every δ run — finite algebras can request
    ``"vectorized"``, ``"parallel"`` (``workers`` sizes the shared
    worker pool, reused across all runs) or ``"batched"`` (the whole
    (start × schedule) grid stacked into one ``(B, n, n)`` tensor
    workload, every δ step computed for all trials per kernel
    invocation); unsupported combinations fall back down the engine
    ladder automatically.
    """
    if schedules is None:
        schedules = schedule_zoo(network.n, seeds=(seed, seed + 17))
    starts = sample_starts(network, n_starts, seed=seed)
    return absolute_convergence_experiment(network, starts, schedules,
                                           max_steps=max_steps, engine=engine,
                                           workers=workers)
