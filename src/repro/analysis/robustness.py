"""Failure-injection robustness sweeps.

Theorems 7/11 promise re-convergence after *any* topology change
(Section 3.2) — this module turns that promise into an experiment
harness a network operator would actually run:

* :func:`failure_sweep` — for each single link (or a random sample of
  link sets), fail it mid-run on the event-driven simulator and record
  re-convergence time, message cost, and whether the reached state is
  the new topology's unique fixed point;
* :func:`partition_probe` — find the failures that partition the
  network and check the protocol *withdraws* routes (no ghost
  reachability, no count-to-infinity);
* :class:`RobustnessReport` — aggregate statistics.

These are the operational acceptance tests implied by the paper's
"convergence is only guaranteed if there is a sufficiently long period
of network stability": the sweep also measures how long that period
needs to be in practice.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..core.state import Network, RoutingState
from ..core.synchronous import synchronous_fixed_point
from ..protocols.dynamics import ChangeScript, fail_edge
from ..protocols.messages import LinkConfig, RELIABLE
from ..protocols.simulator import Simulator


@dataclass
class FailureOutcome:
    """What happened after one injected failure set."""

    failed_links: Tuple[Tuple[int, int], ...]
    converged: bool
    deterministic: bool          #: final state == post-failure σ fixed point
    reconvergence_time: float    #: sim-time from failure to last change
    messages: int
    partitioned_pairs: int       #: (src, dst) pairs that became unreachable


@dataclass
class RobustnessReport:
    """Aggregate over a failure sweep."""

    outcomes: List[FailureOutcome] = field(default_factory=list)

    @property
    def all_converged(self) -> bool:
        return all(o.converged for o in self.outcomes)

    @property
    def all_deterministic(self) -> bool:
        return all(o.deterministic for o in self.outcomes)

    @property
    def worst_reconvergence(self) -> float:
        return max((o.reconvergence_time for o in self.outcomes),
                   default=0.0)

    @property
    def mean_reconvergence(self) -> float:
        if not self.outcomes:
            return 0.0
        return sum(o.reconvergence_time for o in self.outcomes) / \
            len(self.outcomes)

    def table(self) -> str:
        lines = ["failed-links           conv  det   re-time   msgs   cut-pairs"]
        for o in self.outcomes:
            links = ",".join(f"{i}-{j}" for (i, j) in o.failed_links)
            lines.append(
                f"{links:<22s} {'✓' if o.converged else '✗':<5s}"
                f"{'✓' if o.deterministic else '✗':<5s}"
                f"{o.reconvergence_time:<9.1f} {o.messages:<6d} "
                f"{o.partitioned_pairs}")
        return "\n".join(lines)


def _count_unreachable(network: Network, state: RoutingState) -> int:
    alg = network.algebra
    return sum(1 for (i, j, r) in state.entries()
               if i != j and alg.equal(r, alg.invalid))


def inject_failure(network: Network,
                   links: Sequence[Tuple[int, int]],
                   fail_time: float = 40.0,
                   seed: int = 0,
                   link_config: LinkConfig = RELIABLE,
                   max_time: float = 8_000.0) -> FailureOutcome:
    """Fail ``links`` (both directions each) mid-run; measure recovery.

    The simulator runs on a *copy* of the network; the original is left
    untouched.
    """
    working = network.copy()
    sim = Simulator(working, seed=seed, link_config=link_config,
                    refresh_interval=5.0, quiet_period=25.0)
    changes = []
    for (i, j) in links:
        changes.append(fail_edge(i, j, fail_time))
        changes.append(fail_edge(j, i, fail_time))
    script = ChangeScript(sim, changes)
    result = script.run(max_time=max_time)

    reference = synchronous_fixed_point(working)
    deterministic = result.final_state.equals(reference, working.algebra)
    recon = max(0.0, result.convergence_time - fail_time)
    return FailureOutcome(
        failed_links=tuple(links),
        converged=result.converged,
        deterministic=deterministic,
        reconvergence_time=recon,
        messages=result.stats.sent,
        partitioned_pairs=_count_unreachable(working, result.final_state),
    )


def failure_sweep(network: Network, seed: int = 0,
                  link_config: LinkConfig = RELIABLE,
                  max_links: Optional[int] = None) -> RobustnessReport:
    """Fail every (undirected) link once, one at a time."""
    seen = set()
    links: List[Tuple[int, int]] = []
    for (i, j) in network.present_edges():
        key = (min(i, j), max(i, j))
        if key not in seen:
            seen.add(key)
            links.append(key)
    if max_links is not None:
        links = links[:max_links]
    report = RobustnessReport()
    for idx, link in enumerate(links):
        report.outcomes.append(
            inject_failure(network, [link], seed=seed + idx,
                           link_config=link_config))
    return report


def random_multi_failure_sweep(network: Network, k: int, trials: int,
                               seed: int = 0,
                               link_config: LinkConfig = RELIABLE
                               ) -> RobustnessReport:
    """Fail ``k`` random links simultaneously, ``trials`` times."""
    rng = random.Random(seed)
    seen = set()
    all_links = []
    for (i, j) in network.present_edges():
        key = (min(i, j), max(i, j))
        if key not in seen:
            seen.add(key)
            all_links.append(key)
    report = RobustnessReport()
    for t in range(trials):
        chosen = rng.sample(all_links, min(k, len(all_links)))
        report.outcomes.append(
            inject_failure(network, chosen, seed=seed + 100 + t,
                           link_config=link_config))
    return report


def partition_probe(network: Network, links: Sequence[Tuple[int, int]],
                    seed: int = 0) -> Tuple[FailureOutcome, bool]:
    """Inject a partitioning failure and confirm clean withdrawal.

    Returns ``(outcome, withdrew_cleanly)`` where the second component
    is True when every unreachable pair ended at ∞̄ (no ghost routes
    and no divergence — the count-to-infinity acceptance test).
    """
    outcome = inject_failure(network, links, seed=seed)
    withdrew = outcome.converged and outcome.deterministic
    return outcome, withdrew
