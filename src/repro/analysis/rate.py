"""Convergence-rate experiments (Section 8.1).

The paper's companion work proves a tight O(n²) worst-case bound on the
number of synchronous iterations for increasing path algebras, versus
the classical O(n) for distributive ones.  These helpers run the sweep
(family of networks indexed by n → rounds-to-fixpoint) and fit the
growth exponent by log-log least squares.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

import numpy as np

from ..core.state import Network
from .convergence import measure_sync


@dataclass
class RatePoint:
    """One point of a rate sweep."""

    n: int
    rounds: int
    churn: int


@dataclass
class RateSweep:
    """A full sweep plus the fitted growth exponent."""

    family: str
    points: List[RatePoint]

    @property
    def exponent(self) -> float:
        """Least-squares slope of log(rounds) against log(n).

        ~1.0 ⇒ linear growth, ~2.0 ⇒ quadratic.  Requires at least two
        points with rounds ≥ 1.
        """
        xs = [p.n for p in self.points if p.rounds >= 1]
        ys = [p.rounds for p in self.points if p.rounds >= 1]
        if len(xs) < 2:
            return float("nan")
        slope, _intercept = np.polyfit(np.log(xs), np.log(ys), 1)
        return float(slope)

    def table(self) -> str:
        lines = [f"family: {self.family}"]
        lines += [f"  n={p.n:<4d} rounds={p.rounds:<6d} churn={p.churn}"
                  for p in self.points]
        lines.append(f"  fitted exponent: {self.exponent:.2f}")
        return "\n".join(lines)


def rate_sweep(family: str, build: Callable[[int], Network],
               sizes: Sequence[int], max_rounds: int = 10_000) -> RateSweep:
    """Measure synchronous rounds-to-fixpoint across a family of sizes."""
    points = []
    for n in sizes:
        net = build(n)
        m = measure_sync(net, max_rounds=max_rounds)
        if not m.converged:
            raise RuntimeError(
                f"{family} n={n} did not converge within {max_rounds} rounds")
        points.append(RatePoint(n, m.rounds, m.changed_entries))
    return RateSweep(family, points)
