"""Theoretical quantities and provable bounds derived from the paper.

The ultrametric proofs yield more than convergence: they bound *how
long* convergence can take, because each σ application strictly shrinks
an ℕ-valued distance (Lemma 2's decreasing-chain argument).

* distance-vector: D ≤ H (the algebra's height), so σ reaches its fixed
  point from any state within **H** synchronous rounds;
* path-vector: D ≤ H_c + (n + 1), so within **H_c + n + 1** rounds.

These bounds are loose compared to the companion paper's O(n²) but are
*certified by the same proof* — the theory bench checks measured rounds
never exceed them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.algebra import PathAlgebra, RoutingAlgebra
from ..core.state import Network
from ..core.ultrametric import (
    DistanceVectorUltrametric,
    PathVectorUltrametric,
)


@dataclass
class TheoryBounds:
    """Certified quantities for one (algebra, network) pair."""

    carrier_size: Optional[int]     #: |S| when finite (H = carrier_size)
    height: Optional[int]           #: H for DV; H_c for PV
    distance_bound: int             #: d_max of the bounded ultrametric
    sync_round_bound: int           #: certified max synchronous rounds

    def describe(self) -> str:
        return (f"|S|={self.carrier_size}  H={self.height}  "
                f"d_max={self.distance_bound}  "
                f"rounds ≤ {self.sync_round_bound}")


def dv_bounds(algebra: RoutingAlgebra) -> TheoryBounds:
    """Section 4.1 quantities for a finite algebra."""
    metric = DistanceVectorUltrametric(algebra)
    return TheoryBounds(
        carrier_size=metric.H,
        height=metric.H,
        distance_bound=metric.bound,
        sync_round_bound=metric.bound,
    )


def pv_bounds(network: Network) -> TheoryBounds:
    """Section 5.2 quantities for a path algebra on a concrete network."""
    if not isinstance(network.algebra, PathAlgebra):
        raise TypeError("pv_bounds needs a path algebra network")
    metric = PathVectorUltrametric(network)
    return TheoryBounds(
        carrier_size=len(metric.h_c),    # |S_c|
        height=metric.H_c,
        distance_bound=metric.bound,
        sync_round_bound=metric.bound,
    )
