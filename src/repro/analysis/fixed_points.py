"""Fixed-point search: counting stable states.

Absolute convergence (Definition 8) says *one* stable state is reached
from everywhere.  Its failure modes are observable:

* multiple stable states — BGP wedgies (DISAGREE): which one you get
  depends on timing;
* no stable state — persistent oscillation (BAD GADGET).

Two search strategies:

* :func:`enumerate_fixed_points` — exhaustive, exploiting that σ acts
  column-wise: a state is stable iff every destination column is a
  stable column, so columns can be enumerated independently over a
  finite candidate-route set (for path algebras the consistent routes;
  for SPP gadgets the ranked paths).
* :func:`multistart_fixed_points` — sample starting states × schedules,
  run δ, and collect the distinct final states (the operational wedgie
  detector).
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.algebra import PathAlgebra, Route
from ..core.asynchronous import random_state
from ..core.paths import enumerate_consistent_routes
from ..core.schedule import Schedule, schedule_zoo
from ..core.state import Network, RoutingState


def stable_columns(network: Network, dest: int,
                   candidates: Sequence[Route]) -> List[Tuple[Route, ...]]:
    """All stable columns for ``dest`` over per-node candidate routes.

    A column ``x`` (node → route towards ``dest``) is stable when

        x[dest] = 0̄   and   x[i] = ⨁_k A[i][k](x[k])   for i ≠ dest.
    """
    alg = network.algebra
    n = network.n
    pools: List[List[Route]] = []
    for i in range(n):
        if i == dest:
            pools.append([alg.trivial])
        else:
            pool = list(candidates)
            if not any(alg.equal(r, alg.invalid) for r in pool):
                pool.append(alg.invalid)
            pools.append(pool)
    stable: List[Tuple[Route, ...]] = []
    for column in itertools.product(*pools):
        ok = True
        for i in range(n):
            if i == dest:
                continue
            recomputed = alg.best(
                network.edge(i, k)(column[k])
                for k in network.neighbours_in(i))
            if not alg.equal(recomputed, column[i]):
                ok = False
                break
        if ok:
            stable.append(column)
    return stable


@dataclass
class FixedPointCensus:
    """Exhaustive count of stable states."""

    per_destination: Dict[int, int]
    columns: Dict[int, List[Tuple[Route, ...]]] = field(repr=False,
                                                        default_factory=dict)

    @property
    def total(self) -> int:
        """Number of stable global states (product over destinations)."""
        total = 1
        for count in self.per_destination.values():
            total *= count
        return total


def enumerate_fixed_points(network: Network,
                           candidates: Optional[Dict[int, Sequence[Route]]] = None,
                           dests: Optional[Sequence[int]] = None
                           ) -> FixedPointCensus:
    """Exhaustively count stable states.

    ``candidates`` maps destination → candidate routes for that column;
    when omitted and the algebra is a path algebra, the per-destination
    consistent routes are used (every stable state of a path algebra is
    consistent — Lemma 10's observation that X* cannot be inconsistent).
    """
    if dests is None:
        dests = range(network.n)
    per_dest: Dict[int, int] = {}
    columns: Dict[int, List[Tuple[Route, ...]]] = {}
    for d in dests:
        if candidates is not None and d in candidates:
            pool: Sequence[Route] = candidates[d]
        elif isinstance(network.algebra, PathAlgebra):
            pool = enumerate_consistent_routes(network.algebra, network, dest=d)
        else:
            if not network.algebra.is_finite:
                raise ValueError(
                    "exhaustive enumeration needs a finite candidate set; "
                    "pass `candidates` explicitly")
            pool = list(network.algebra.routes())
        cols = stable_columns(network, d, pool)
        per_dest[d] = len(cols)
        columns[d] = cols
    return FixedPointCensus(per_dest, columns)


@dataclass
class MultistartReport:
    """Distinct outcomes of δ from sampled (state, schedule) pairs."""

    runs: int
    converged_runs: int
    fixed_points: List[RoutingState]
    diverged: int

    @property
    def wedged(self) -> bool:
        """More than one reachable stable state — the wedgie condition."""
        return len(self.fixed_points) > 1


def multistart_fixed_points(network: Network, n_starts: int = 10,
                            schedules: Optional[Sequence[Schedule]] = None,
                            seed: int = 0, max_steps: int = 2_000,
                            include_identity_start: bool = True
                            ) -> MultistartReport:
    """Operational fixed-point search by running δ from many states."""
    alg = network.algebra
    rng = random.Random(seed)
    schedules = list(schedules) if schedules is not None else \
        schedule_zoo(network.n, seeds=(seed, seed + 1))
    starts: List[RoutingState] = []
    if include_identity_start:
        starts.append(RoutingState.identity(alg, network.n))
    for _ in range(n_starts):
        starts.append(random_state(alg, network.n, rng))

    from ..session import RoutingSession

    fixed_points: List[RoutingState] = []
    runs = converged = diverged = 0
    # one session for the whole grid: engines (and the compiled-schedule
    # cache) are negotiated once and reused across every trial
    with RoutingSession(network) as session:
        for start in starts:
            for sched in schedules:
                runs += 1
                result = session.delta(sched, start,
                                       max_steps=max_steps).result
                if not result.converged:
                    diverged += 1
                    continue
                converged += 1
                if not any(result.state.equals(fp, alg)
                           for fp in fixed_points):
                    fixed_points.append(result.state)
    return MultistartReport(runs, converged, fixed_points, diverged)


def sync_oscillates(network: Network, start: Optional[RoutingState] = None,
                    max_rounds: int = 500) -> bool:
    """Does synchronous iteration enter a limit *cycle*?

    The BAD GADGET signature: a state repeats without being a fixed
    point.  Distinguished from unbounded divergence (count-to-infinity,
    where states never repeat): that case returns False here and is
    detected by ``iterate_sigma(...).converged == False`` without an
    early cycle stop.
    """
    from ..session import RoutingSession

    if start is None:
        start = RoutingState.identity(network.algebra, network.n)
    with RoutingSession(network) as session:
        result = session.sigma(start, max_rounds=max_rounds,
                               detect_cycles=True)
    return not result.converged and result.rounds < max_rounds
