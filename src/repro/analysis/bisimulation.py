"""Bisimulation between routing algebras (Section 8.4, made executable).

The paper sketches how operations that do not fit the path-algebra mold
can still inherit convergence: exhibit a *bisimilar* algebra that does.
Algebra B is bisimilar to algebra A (over paired networks) when a
relation between their routes commutes with both σ's:

    X_A  ~  X_B    ⇒    σ_A(X_A)  ~  σ_B(X_B)

If A converges absolutely, every σ_B trajectory is then shadowed by a
σ_A trajectory, so B converges absolutely too — even if B itself lacks,
say, a lawful ``path`` function.

This module provides the checker: given two networks, a route
*abstraction* map ``project : route_A → route_B`` and a set of starting
states, :func:`check_bisimulation` verifies the commuting square on
live trajectories (a bounded, falsifiable version of the paper's
definition) and compares the projected fixed points.

The worked example from Section 8.4 — BGP discarding router-level paths
at AS boundaries — lives in the tests and the prepending module:
``PrependingBGPAlgebra`` (raw padded paths) projects onto ``BGPLite``
(stripped paths) by :func:`repro.algebras.prepending.strip_padding`,
and the square commutes whenever no policy *reads* the padding — the
paper's "did not let policies make decisions based on this extra
information" proviso, stated as a checkable condition.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from ..core.algebra import Route
from ..core.state import Network, RoutingState
from ..core.synchronous import _iterate_sigma_resolved, sigma


def project_state(project: Callable[[Route], Route],
                  state: RoutingState) -> RoutingState:
    """Apply a route abstraction map entry-wise."""
    return RoutingState([[project(state.get(i, j))
                          for j in range(state.n)]
                         for i in range(state.n)])


@dataclass
class BisimulationReport:
    """Outcome of a bounded bisimulation check."""

    rounds_checked: int
    trajectories: int
    commutes: bool
    fixed_points_match: Optional[bool]
    counterexample: Optional[tuple] = field(default=None, repr=False)

    def __bool__(self) -> bool:
        return self.commutes and (self.fixed_points_match is not False)


def check_bisimulation(concrete: Network, abstract: Network,
                       project: Callable[[Route], Route],
                       starts: Sequence[RoutingState],
                       rounds: int = 10,
                       compare_fixed_points: bool = True
                       ) -> BisimulationReport:
    """Check ``project ∘ σ_concrete = σ_abstract ∘ project`` on trajectories.

    ``starts`` are states of the *concrete* network; each is iterated
    ``rounds`` times while the commuting square is checked per round.
    With ``compare_fixed_points`` the σ fixed points (from the identity
    start) are also compared under the projection.
    """
    if concrete.n != abstract.n:
        raise ValueError("bisimilar networks must have equal node counts")
    alg_b = abstract.algebra
    counterexample = None
    commutes = True
    checked = 0
    for start in starts:
        x_a = start
        x_b = project_state(project, start)
        for _round in range(rounds):
            x_a = sigma(concrete, x_a)
            x_b = sigma(abstract, x_b)
            checked += 1
            projected = project_state(project, x_a)
            if not projected.equals(x_b, alg_b):
                commutes = False
                counterexample = (start, _round, projected, x_b)
                break
        if not commutes:
            break

    fps_match: Optional[bool] = None
    if compare_fixed_points:
        fa = _iterate_sigma_resolved(
            concrete, RoutingState.identity(concrete.algebra, concrete.n),
            "incremental")
        fb = _iterate_sigma_resolved(
            abstract, RoutingState.identity(alg_b, abstract.n),
            "incremental")
        if fa.converged and fb.converged:
            fps_match = project_state(project, fa.state).equals(
                fb.state, alg_b)
        else:
            fps_match = False
    return BisimulationReport(rounds, len(starts), commutes, fps_match,
                              counterexample)


def inherited_convergence(report: BisimulationReport,
                          abstract_guarantee: str) -> str:
    """Phrase the Section 8.4 inheritance argument for a report."""
    if not report:
        return ("no inheritance: the bisimulation square failed "
                f"({'fixed points differ' if report.commutes else 'σ does not commute with the projection'})")
    return (f"convergence inherited through bisimulation: the abstract "
            f"algebra's guarantee [{abstract_guarantee}] transfers to the "
            f"concrete protocol")
