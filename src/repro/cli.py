"""Command-line front-end: poke the library without writing code.

Usage (also via ``python -m repro.cli``):

    python -m repro.cli list
    python -m repro.cli verify --algebra bgplite
    python -m repro.cli converge --algebra hop-count --topology ring --n 6
    python -m repro.cli census --gadget disagree
    python -m repro.cli simulate --algebra bgplite --n 8 --loss 0.2 --dup 0.1
    python -m repro.cli worker --host 127.0.0.1 --port 5700
    python -m repro.cli converge --engine remote --remote-workers 2

Each subcommand maps one-to-one onto a library workflow; the CLI is a
thin, dependency-free wrapper intended for quick demos and for
operators who want to law-check a configuration idea before modelling
it properly.
"""

from __future__ import annotations

import argparse
import logging
import random
import sys
from typing import Callable, Dict, Optional, Tuple

from .algebras import (
    AddPaths,
    BGPLiteAlgebra,
    BoundedStratifiedAlgebra,
    GaoRexfordAlgebra,
    HopCountAlgebra,
    MostReliableAlgebra,
    PrependingBGPAlgebra,
    QuantisedReliabilityAlgebra,
    ShortestPathsAlgebra,
    StratifiedAlgebra,
    WidestPathsAlgebra,
    bad_gadget,
    disagree,
    good_gadget,
    increasing_disagree,
    spp_fixed_point_candidates,
)
from .analysis import (
    enumerate_fixed_points,
    multistart_fixed_points,
    sync_oscillates,
)
from .core import ENGINES, Network, UnsupportedEngineError, \
    synchronous_fixed_point
from .protocols import LinkConfig
from .session import EngineSpec, RoutingSession
from .topologies import (
    bgp_policy_factory,
    complete,
    erdos_renyi,
    lifted_weight_factory,
    line,
    ring,
    star,
    uniform_weight_factory,
)
from .verification import convergence_guarantee, verify_network


# ----------------------------------------------------------------------
# Registries
# ----------------------------------------------------------------------


def _hop():
    alg = HopCountAlgebra(16)
    return alg, uniform_weight_factory(alg, 1, 3), True, False


def _shortest():
    alg = ShortestPathsAlgebra()
    return alg, uniform_weight_factory(alg, 1, 5), False, False


def _widest():
    alg = WidestPathsAlgebra()
    return alg, uniform_weight_factory(alg, 1, 5), False, False


def _reliable():
    alg = QuantisedReliabilityAlgebra(8)
    return alg, (lambda rng, _i, _j: alg.sample_edge_function(rng)), True, False


def _shortest_pv():
    alg = AddPaths(ShortestPathsAlgebra(), n_nodes=32)
    return alg, lifted_weight_factory(alg, 1, 5), False, True


def _bgplite():
    alg = BGPLiteAlgebra(n_nodes=32)
    return alg, bgp_policy_factory(alg, allow_reject=False), False, True


def _prepending():
    alg = PrependingBGPAlgebra(n_nodes=32)
    return alg, (lambda rng, i, j: alg.sample_edge_function(rng)), False, True


def _gao_rexford():
    alg = GaoRexfordAlgebra(n_nodes=32)

    def factory(rng, i, j):
        from .algebras import Rel

        return alg.edge(i, j, Rel(rng.randrange(3)))

    return alg, factory, False, True


def _stratified():
    alg = StratifiedAlgebra()
    return alg, (lambda rng, _i, _j: alg.sample_edge_function(rng)), \
        False, False


def _stratified_bounded():
    alg = BoundedStratifiedAlgebra(max_level=3, max_distance=12)
    return alg, (lambda rng, _i, _j: alg.sample_edge_function(rng)), \
        True, False


ALGEBRAS: Dict[str, Callable] = {
    "hop-count": _hop,
    "shortest": _shortest,
    "widest": _widest,
    "reliable": _reliable,
    "shortest-pv": _shortest_pv,
    "bgplite": _bgplite,
    "prepending": _prepending,
    "gao-rexford": _gao_rexford,
    "stratified": _stratified,
    "stratified-bounded": _stratified_bounded,
}

TOPOLOGIES = {
    "line": line,
    "ring": ring,
    "star": star,
    "complete": complete,
}

GADGETS = {
    "disagree": disagree,
    "bad": bad_gadget,
    "good": good_gadget,
    "disagree-increasing": increasing_disagree,
}


def build_network(algebra_name: str, topology: str, n: int,
                  seed: int) -> Tuple[Network, bool, bool]:
    if algebra_name not in ALGEBRAS:
        raise SystemExit(f"unknown algebra {algebra_name!r}; "
                         f"choose from {sorted(ALGEBRAS)}")
    alg, factory, finite, is_path = ALGEBRAS[algebra_name]()
    if topology == "random":
        net = erdos_renyi(alg, n, 0.4, factory, seed=seed)
    elif topology in TOPOLOGIES:
        net = TOPOLOGIES[topology](alg, n, factory, seed=seed)
    else:
        raise SystemExit(f"unknown topology {topology!r}; choose from "
                         f"{sorted(TOPOLOGIES) + ['random']}")
    return net, finite, is_path


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------


def _describe_resolution(resolution) -> str:
    """One line for the chosen rung, one indented line per skipped rung
    (the negotiation's machine-readable reason chain, printed)."""
    head = resolution.chosen
    if resolution.workers:
        if resolution.chosen == "remote":
            head += f" ({resolution.workers} TCP worker shards, " \
                    "delta-encoded column updates)"
        else:
            head += f" ({resolution.workers} workers, shared-memory " \
                    "column sharding)"
    if resolution.requested != resolution.chosen:
        head += f" (requested: {resolution.requested})"
    lines = [head]
    for skip in resolution.skipped:
        lines.append(f"                    - skipped {skip.rung} "
                     f"[{skip.code}]: {skip.detail}")
    return "\n".join(lines)


def _session(net, args) -> RoutingSession:
    """The negotiated session every engine-touching subcommand uses."""
    endpoints = getattr(args, "endpoint", None) or None
    return RoutingSession(net, EngineSpec(
        args.engine, workers=args.workers,
        strict=getattr(args, "strict_engine", False),
        remote_workers=getattr(args, "remote_workers", None),
        endpoints=endpoints,
        socket_timeout=getattr(args, "socket_timeout", None)))


def cmd_list(_args) -> int:
    print("algebras :", ", ".join(sorted(ALGEBRAS)))
    print("topologies:", ", ".join(sorted(TOPOLOGIES) + ["random"]))
    print("gadgets  :", ", ".join(sorted(GADGETS)))
    return 0


def cmd_verify(args) -> int:
    net, finite, is_path = build_network(args.algebra, args.topology,
                                         args.n, args.seed)
    report = verify_network(net, samples=args.samples)
    print(report.table())
    print()
    print("→", convergence_guarantee(report, finite_carrier=finite,
                                     path_algebra=is_path))
    return 0 if report.is_routing_algebra else 1


def cmd_converge(args) -> int:
    net, _finite, _is_path = build_network(args.algebra, args.topology,
                                           args.n, args.seed)
    with _session(net, args) as session:
        report = session.converges(n_starts=args.starts, seed=args.seed,
                                   max_steps=args.max_steps)
    grid = report.grid
    print(f"network           : {net.name} ({net.algebra.name})")
    print(f"engine            : {_describe_resolution(grid.resolution)}")
    if grid.schedule_seed_version is not None:
        print(f"schedule seeds    : v{grid.schedule_seed_version} "
              "(RandomSchedule.SCHEDULE_SEED_VERSION)")
    print(f"runs              : {grid.runs} (starts × schedules)")
    print(f"all converged     : {grid.all_converged}")
    print(f"distinct fixpoints: {len(grid.distinct_fixed_points)}")
    print(f"steps             : mean {grid.mean_steps:.1f}, "
          f"worst {grid.max_steps}")
    if grid.wire is not None:
        w = grid.wire
        print(f"wire              : {w.total_bytes} B over {w.rounds} "
              f"rounds ({w.bytes_per_round:.0f} B/round, "
              f"compression {w.compression_ratio:.1f}x vs naive "
              "full-column transfer)")
    print(f"elapsed           : {grid.elapsed_s:.2f}s")
    print(f"ABSOLUTE          : {report.absolute}")
    return 0 if report.absolute else 1


def cmd_census(args) -> int:
    if args.gadget not in GADGETS:
        raise SystemExit(f"unknown gadget {args.gadget!r}; choose from "
                         f"{sorted(GADGETS)}")
    net = GADGETS[args.gadget]()
    census = enumerate_fixed_points(
        net, candidates={0: spp_fixed_point_candidates(net)}, dests=[0])
    multistart = multistart_fixed_points(net, n_starts=args.starts,
                                         seed=args.seed, max_steps=600)
    print(f"gadget            : {net.name}")
    print(f"stable states     : {census.per_destination[0]}")
    print(f"reachable states  : {len(multistart.fixed_points)}")
    print(f"diverged runs     : {multistart.diverged}/{multistart.runs}")
    print(f"sync oscillates   : {sync_oscillates(net)}")
    if census.per_destination[0] > 1:
        print("VERDICT: wedgie — outcome depends on message timing")
    elif census.per_destination[0] == 0:
        print("VERDICT: no stable state — permanent oscillation")
    else:
        print("VERDICT: unique stable state")
    return 0


def _parse_fault_plan(spec):
    """``--fault-plan`` value: inline JSON, or ``@path`` to a JSON file."""
    if spec is None:
        return None
    from .core.faults import FaultPlan
    if spec.startswith("@"):
        with open(spec[1:], "r", encoding="utf-8") as fh:
            spec = fh.read()
    return FaultPlan.parse(spec)


def cmd_worker(args) -> int:
    from .core.remote import serve_worker
    try:
        serve_worker(host=args.host, port=args.port, once=args.once,
                     announce=True,
                     fault_plan=_parse_fault_plan(args.fault_plan))
    except KeyboardInterrupt:
        pass
    return 0


def cmd_serve(args) -> int:
    from .service import serve
    if args.log:
        logging.basicConfig(
            level=logging.INFO,
            format="%(asctime)s %(name)s %(levelname)s %(message)s")
    try:
        serve(host=args.host, port=args.port, engine=args.engine,
              max_sessions=args.max_sessions,
              cache_entries=args.cache_entries,
              max_inflight=args.max_inflight,
              fault_plan=_parse_fault_plan(args.fault_plan),
              state_dir=args.state_dir,
              snapshot_interval=args.snapshot_interval,
              journal_sync_every=args.journal_sync_every,
              drain_deadline=args.drain_deadline,
              announce=True)
    except KeyboardInterrupt:
        pass
    return 0


def cmd_simulate(args) -> int:
    net, _finite, _is_path = build_network(args.algebra, args.topology,
                                           args.n, args.seed)
    cfg = LinkConfig(min_delay=0.2, max_delay=3.0, loss=args.loss,
                     duplicate=args.dup)
    with _session(net, args) as session:
        report = session.simulate(seed=args.seed, link_config=cfg,
                                  refresh_interval=5.0, quiet_period=25.0)
    res = report.result
    ref = synchronous_fixed_point(net)
    print(f"network        : {net.name} ({net.algebra.name})")
    # the event simulation itself is pure-python; only the final
    # σ-stability verdict runs on the negotiated engine (a single
    # stability check has no trial grid to batch, so the batched rung
    # declines it — the reason chain says so)
    print(f"σ-check engine : {_describe_resolution(report.resolution)}")
    print(f"converged      : {res.converged} "
          f"(σ-stable: {res.final_state.equals(ref, net.algebra)})")
    print(f"conv. time     : {res.convergence_time:.1f}")
    print(f"messages       : {res.stats.as_dict()}")
    print(f"table changes  : {res.trace.total_changes}")
    return 0 if res.converged else 1


def cmd_scenarios(args) -> int:
    # lazy: the scenario package imports this module's registries
    from .scenarios import (
        DEFAULT_EVENTS,
        build_scenario_network,
        replay_events,
        run_survey,
        scenario_algebras,
        scenario_events,
        scenario_topologies,
    )
    if args.action == "list":
        print("topologies:", ", ".join(sorted(scenario_topologies())))
        print("events    :", ", ".join(scenario_events()))
        print("algebras  :", ", ".join(sorted(scenario_algebras())))
        return 0
    if args.action == "run":
        topology = (args.topology or ["corpus:abilene"])[0]
        algebra = (args.algebra or ["hop-count"])[0]
        names = list(args.event) if args.event else list(DEFAULT_EVENTS)
        registry = scenario_events()
        for name in names:
            if name not in registry:
                raise SystemExit(f"unknown event {name!r}; choose from "
                                 f"{sorted(registry)}")
        net, factory = build_scenario_network(topology, algebra,
                                              seed=args.seed)
        with RoutingSession(net, EngineSpec(args.engine)) as session:
            report = replay_events(
                session, [registry[name]() for name in names], factory,
                seed=args.seed)
        print(f"network : {net.name} ({net.algebra.name}, n={net.n})")
        print(f"engine  : {_describe_resolution(report.resolution)}")
        print(f"{'phase':<18} {'muts':>4} {'rounds':>6} {'churn':>6} "
              f"{'converged':>9}")
        for step in report.steps:
            churn = "-" if step.churn is None else step.churn
            print(f"{step.label:<18} {step.mutations:>4} {step.rounds:>6} "
                  f"{churn:>6} {str(step.converged):>9}")
        print(f"total   : {report.phases} phases, "
              f"churn {report.total_churn}, rounds {report.total_rounds}, "
              f"{report.elapsed_s:.2f}s")
        return 0 if report.all_converged else 1
    # survey
    progress = None
    if args.progress:
        def progress(cell):
            mark = "ok" if cell.ok else "FAIL"
            print(f"  {cell.topology} × {cell.event} × {cell.algebra}: "
                  f"{mark} ({cell.elapsed_s:.2f}s)", flush=True)
    report = run_survey(
        topologies=args.topology, events=args.event, algebras=args.algebra,
        seed=args.seed, trials=args.trials, oracle=args.oracle,
        engine=args.engine, max_steps=args.max_steps, progress=progress)
    print(report.render_table())
    return 1 if report.failed else 0


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list algebras/topologies/gadgets")

    def common(p):
        p.add_argument("--algebra", default="hop-count")
        p.add_argument("--topology", default="ring")
        p.add_argument("--n", type=int, default=6)
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--engine", default="auto",
                       choices=("auto",) + ENGINES,
                       help="σ/δ engine ladder rung, resolved by "
                            "capability negotiation ('auto', the "
                            "default, starts at the top rung the "
                            "operation supports); every skipped rung "
                            "is printed with its machine-readable "
                            "reason code")
        p.add_argument("--workers", type=int, default=None,
                       help="worker processes for the parallel rung "
                            "(default: auto-size to the host CPUs; "
                            "small problems and single-CPU hosts fall "
                            "down the ladder)")
        p.add_argument("--strict-engine", action="store_true",
                       help="raise instead of falling down the ladder "
                            "when the requested --engine cannot run "
                            "this configuration")
        p.add_argument("--remote-workers", type=int, default=None,
                       help="remote rung: spawn this many loopback TCP "
                            "worker subprocesses (single-host testing "
                            "transport; ignored by other rungs)")
        p.add_argument("--endpoint", action="append", default=None,
                       metavar="HOST:PORT",
                       help="remote rung: connect to a worker started "
                            "with the 'worker' subcommand (repeat for "
                            "one shard per worker; wins over "
                            "--remote-workers)")
        p.add_argument("--socket-timeout", type=float, default=None,
                       help="remote rung: seconds before a silent "
                            "worker socket raises RemoteWorkerError "
                            "(default 120)")

    p = sub.add_parser("verify", help="law-check a deployed network")
    common(p)
    p.add_argument("--samples", type=int, default=40)

    p = sub.add_parser("converge", help="absolute-convergence experiment")
    common(p)
    p.add_argument("--starts", type=int, default=5)
    p.add_argument("--max-steps", type=int, default=2500)

    p = sub.add_parser("census", help="stable-state census of a gadget")
    p.add_argument("--gadget", default="disagree")
    p.add_argument("--starts", type=int, default=8)
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser("simulate", help="event-driven protocol run")
    common(p)
    p.add_argument("--loss", type=float, default=0.0)
    p.add_argument("--dup", type=float, default=0.0)

    p = sub.add_parser(
        "worker",
        help="serve one remote-rung worker shard over TCP (prints "
             "'listening on host:port' once bound; Ctrl-C to stop)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0,
                   help="TCP port to bind (default 0: an ephemeral "
                        "port, reported on stdout)")
    p.add_argument("--once", action="store_true",
                   help="exit after serving a single coordinator "
                        "connection instead of accepting forever")
    p.add_argument("--fault-plan", default=None, metavar="JSON|@FILE",
                   help="seeded chaos: a FaultPlan as inline JSON (or "
                        "@path to a JSON file) injected into this "
                        "worker's frame stream")

    p = sub.add_parser(
        "serve",
        help="run the routing service daemon (JSON-over-TCP, warm "
             "sessions, fixed-point cache; prints 'listening on "
             "host:port' once bound; Ctrl-C to stop)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0,
                   help="TCP port to bind (default 0: an ephemeral "
                        "port, reported on stdout)")
    p.add_argument("--engine", default="auto",
                   choices=("auto",) + ENGINES,
                   help="default engine for sessions whose 'load' "
                        "does not name one")
    p.add_argument("--max-sessions", type=int, default=8,
                   help="warm-session registry bound (LRU eviction)")
    p.add_argument("--cache-entries", type=int, default=512,
                   help="per-session fixed-point cache bound (LRU)")
    p.add_argument("--max-inflight", type=int, default=32,
                   help="backpressure bound: concurrent query computes "
                        "admitted before the daemon sheds with a typed "
                        "'busy' error carrying a retry_after_ms hint")
    p.add_argument("--fault-plan", default=None, metavar="JSON|@FILE",
                   help="seeded chaos: a FaultPlan as inline JSON (or "
                        "@path to a JSON file) injected into the "
                        "daemon's request/reply stream")
    p.add_argument("--state-dir", default=None, metavar="DIR",
                   help="durable state directory: write-ahead journal "
                        "of admitted mutations plus periodic snapshots; "
                        "on restart the daemon restores the newest "
                        "valid snapshot, replays the journal tail and "
                        "serves identical topology versions with a "
                        "warm cache (default: in-memory only)")
    p.add_argument("--snapshot-interval", type=float, default=30.0,
                   metavar="SECONDS",
                   help="seconds between periodic snapshots when the "
                        "journal has advanced (default 30)")
    p.add_argument("--journal-sync-every", type=int, default=8,
                   metavar="N",
                   help="fsync the journal every N records (default 8; "
                        "records always reach the OS before the reply)")
    p.add_argument("--drain-deadline", type=float, default=10.0,
                   metavar="SECONDS",
                   help="graceful-drain budget on SIGTERM/'shutdown': "
                        "finish inflight work for up to this long while "
                        "rejecting new work with a typed 'draining' "
                        "error, then flush and snapshot (default 10)")
    p.add_argument("--log", action="store_true",
                   help="emit per-request structured logs on stderr")

    p = sub.add_parser(
        "scenarios",
        help="topology-corpus reconfiguration scenarios: list the "
             "registry, replay one event stream, or run the "
             "(topology × event × algebra) survey grid")
    p.add_argument("action", choices=("list", "run", "survey"),
                   help="'list' the scenario registry; 'run' one event "
                        "stream on one topology with a per-phase table; "
                        "'survey' the full grid (exit 1 on any failed "
                        "cell)")
    p.add_argument("--topology", action="append", default=None,
                   metavar="NAME",
                   help="scenario topology (repeatable; 'run' uses the "
                        "first; survey default: the whole registry)")
    p.add_argument("--event", action="append", default=None,
                   metavar="NAME",
                   help="event type (repeatable; default: all five)")
    p.add_argument("--algebra", action="append", default=None,
                   metavar="NAME",
                   help="algebra (repeatable; 'run' uses the first; "
                        "survey default: hop-count + stratified-bounded, "
                        "both finite so grids negotiate the batched "
                        "rung)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--trials", type=int, default=4,
                   help="δ trials per survey cell (schedule × start "
                        "grid on the post-event topology)")
    p.add_argument("--oracle", action="store_true",
                   help="re-run every cell on an independent network "
                        "with the engine pinned below the batched rung "
                        "and require bit-identical replay phases and "
                        "grid trials")
    p.add_argument("--engine", default="auto",
                   choices=("auto",) + ENGINES)
    p.add_argument("--max-steps", type=int, default=2000)
    p.add_argument("--progress", action="store_true",
                   help="survey: print one line per finished cell")
    return parser


COMMANDS = {
    "list": cmd_list,
    "verify": cmd_verify,
    "converge": cmd_converge,
    "census": cmd_census,
    "simulate": cmd_simulate,
    "worker": cmd_worker,
    "serve": cmd_serve,
    "scenarios": cmd_scenarios,
}


def main(argv: Optional[list] = None) -> int:
    args = make_parser().parse_args(argv)
    try:
        return COMMANDS[args.command](args)
    except UnsupportedEngineError as exc:
        raise SystemExit(f"engine negotiation failed: {exc}")


if __name__ == "__main__":
    sys.exit(main())
