"""Crash-recoverable service state: write-ahead journal + snapshots.

The routing daemon's durable state is tiny and perfectly replayable:

* a **session** is fully determined by its load parameters
  ``(algebra, topology, n, seed, engine)`` — the topology itself is
  rebuilt from the seed, never serialised;
* every admitted **mutation** is ``(verb, i, k, edge_seed)`` — the edge
  function is re-materialised from ``edge_seed`` exactly as the daemon
  did the first time, so replay reproduces the adjacency *and* its
  monotonic version counter bit for bit;
* the fixed-point **cache bodies** are already JSON (that is how they
  travel on the wire), so snapshots embed them verbatim and a restored
  daemon serves warm hits immediately.

Two files per ``--state-dir``:

``journal.wal``
    A write-ahead journal of admitted ``load`` / ``set_edge`` /
    ``remove_edge`` records.  Each record is length-prefixed and
    checksummed — ``struct.pack("!II", len(body), crc32(body)) + body``
    with a compact-JSON body carrying a monotonic ``seq`` — appended
    with ``os.write`` semantics and fsync-batched every ``sync_every``
    records (and always on :meth:`flush`).  On restore, the first
    record whose header is short, whose body is short, or whose
    checksum mismatches marks a **torn tail**: everything from that
    byte offset on is dropped and the file truncated exactly at the
    tear.

``snapshot-<seq>.json``
    Periodic full-state snapshots (session params, ordered mutation
    log, topology version, cache bodies) written atomically
    (temp file + ``os.replace``) with an embedded sha256 checksum over
    the canonical JSON.  ``<seq>`` is the journal sequence the snapshot
    covers; restore walks snapshots newest-first until one validates,
    then replays only journal records with ``seq`` beyond it.

Nothing here knows about sockets or asyncio — the daemon owns the
threading discipline (appends happen on the event loop; snapshot
*payloads* are built on the loop for consistency and written in the
executor).
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import re
import struct
import time
import zlib
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

logger = logging.getLogger("repro.service")

__all__ = [
    "SNAPSHOT_FORMAT",
    "JOURNAL_HEADER",
    "PersistenceError",
    "ServicePersistence",
    "cache_key_to_json",
    "cache_key_from_json",
]

#: bump when the snapshot payload shape changes; mismatched snapshots
#: are skipped (the journal alone still restores mutations).
SNAPSHOT_FORMAT = 1

#: per-record journal header: big-endian (body length, crc32(body)).
JOURNAL_HEADER = struct.Struct("!II")

_SNAPSHOT_RE = re.compile(r"^snapshot-(\d+)\.json$")


class PersistenceError(RuntimeError):
    """Unrecoverable state-dir failure (permissions, not a directory)."""


def cache_key_to_json(key: Tuple) -> List:
    """Fixed-point cache keys are tuples (hashable); JSON turns them
    into lists.  The inner knobs tuple nests one level deep."""
    return [list(part) if isinstance(part, tuple) else part for part in key]


def cache_key_from_json(parts: List) -> Tuple:
    """Inverse of :func:`cache_key_to_json` — rebuild the hashable key."""
    return tuple(tuple(part) if isinstance(part, list) else part
                 for part in parts)


def _canonical(obj: Any) -> bytes:
    return json.dumps(obj, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


class ServicePersistence:
    """One daemon's durable state under ``state_dir``.

    Not thread-safe by itself: the daemon serialises appends on its
    event loop and hands snapshot writes (pre-built payloads) to the
    executor only while appends for the covered records have already
    happened — see ``RoutingServiceDaemon``.
    """

    def __init__(self, state_dir, *, sync_every: int = 8,
                 keep_snapshots: int = 3):
        self.state_dir = Path(state_dir)
        try:
            self.state_dir.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise PersistenceError(
                f"cannot create state dir {state_dir!r}: {exc}") from exc
        self.journal_path = self.state_dir / "journal.wal"
        self.sync_every = max(1, int(sync_every))
        self.keep_snapshots = max(1, int(keep_snapshots))
        self.journal_seq = 0             # last sequence number written
        self.snapshot_seq = 0            # journal seq the newest snapshot covers
        self.last_snapshot_monotonic: Optional[float] = None
        self._fh = None
        self._unsynced = 0

    # -- journal ---------------------------------------------------------

    def _journal_fh(self):
        if self._fh is None:
            self._fh = open(self.journal_path, "ab")
        return self._fh

    def append(self, record: Dict) -> int:
        """Append one journal record; returns its sequence number.

        The record reaches the OS (``write`` + ``flush``) before this
        returns — a SIGKILL after the daemon replies can no longer lose
        it — and reaches the platters every ``sync_every`` records.
        """
        self.journal_seq += 1
        body = _canonical(dict(record, seq=self.journal_seq))
        fh = self._journal_fh()
        fh.write(JOURNAL_HEADER.pack(len(body), zlib.crc32(body)) + body)
        fh.flush()
        self._unsynced += 1
        if self._unsynced >= self.sync_every:
            self.flush()
        return self.journal_seq

    def flush(self) -> None:
        """fsync pending journal records (no-op when none are pending)."""
        if self._fh is not None and self._unsynced:
            os.fsync(self._fh.fileno())
            self._unsynced = 0

    def _read_journal(self) -> Tuple[List[Dict], bool]:
        """All intact records, truncating the file at the first tear."""
        if not self.journal_path.exists():
            return [], False
        data = self.journal_path.read_bytes()
        records: List[Dict] = []
        pos = 0
        torn = False
        while pos < len(data):
            if pos + JOURNAL_HEADER.size > len(data):
                torn = True                      # short header
                break
            length, crc = JOURNAL_HEADER.unpack_from(data, pos)
            body = data[pos + JOURNAL_HEADER.size:
                        pos + JOURNAL_HEADER.size + length]
            if len(body) < length or zlib.crc32(body) != crc:
                torn = True                      # short body or bit rot
                break
            try:
                rec = json.loads(body)
            except ValueError:
                torn = True                      # crc collision on garbage
                break
            records.append(rec)
            pos += JOURNAL_HEADER.size + length
        if torn:
            logger.warning(
                "journal tail torn at byte %d of %d; dropping %d trailing "
                "byte(s) (records before the tear are intact)",
                pos, len(data), len(data) - pos)
            with open(self.journal_path, "r+b") as fh:
                fh.truncate(pos)
                fh.flush()
                os.fsync(fh.fileno())
        return records, torn

    def truncate_journal(self) -> None:
        """Drop every journal record (they are covered by a snapshot).

        Only safe while nothing is appending — the daemon calls this
        single-threaded at the end of restore.
        """
        if self._fh is not None:
            self._fh.close()
            self._fh = None
        with open(self.journal_path, "wb") as fh:
            fh.flush()
            os.fsync(fh.fileno())
        self._unsynced = 0

    # -- snapshots -------------------------------------------------------

    def _snapshot_files(self) -> List[Tuple[int, Path]]:
        """``(seq, path)`` pairs, newest first."""
        found = []
        for path in self.state_dir.iterdir():
            m = _SNAPSHOT_RE.match(path.name)
            if m:
                found.append((int(m.group(1)), path))
        return sorted(found, reverse=True)

    def snapshot(self, sessions: List[Dict],
                 journal_seq: Optional[int] = None) -> Path:
        """Write one atomic, checksummed snapshot covering ``journal_seq``
        (defaults to the current sequence).

        ``sessions`` is the daemon-built payload: one dict per warm
        session with params, mutation log, topology version and cache
        bodies.  Pass an explicit ``journal_seq`` when the payload was
        built earlier than the write (the daemon captures both on the
        event loop, then writes here from the executor).
        """
        seq = self.journal_seq if journal_seq is None else int(journal_seq)
        payload = {
            "format": SNAPSHOT_FORMAT,
            "journal_seq": seq,
            "sessions": sessions,
        }
        payload["checksum"] = hashlib.sha256(_canonical(payload)).hexdigest()
        path = self.state_dir / f"snapshot-{seq:012d}.json"
        tmp = self.state_dir / f".snapshot-{seq:012d}.tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, separators=(",", ":"))
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        self.snapshot_seq = max(self.snapshot_seq, seq)
        self.last_snapshot_monotonic = time.monotonic()
        self._prune_snapshots()
        return path

    def _prune_snapshots(self) -> None:
        for _seq, path in self._snapshot_files()[self.keep_snapshots:]:
            try:
                path.unlink()
            except OSError:              # pragma: no cover - races are fine
                pass

    def _load_snapshot(self, path: Path) -> Optional[Dict]:
        """Parse + checksum-verify one snapshot; ``None`` when invalid."""
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            logger.warning("skipping unreadable snapshot %s: %s",
                           path.name, exc)
            return None
        if not isinstance(payload, dict) or \
                payload.get("format") != SNAPSHOT_FORMAT:
            logger.warning("skipping snapshot %s: unknown format %r",
                           path.name, payload.get("format")
                           if isinstance(payload, dict) else type(payload))
            return None
        recorded = payload.pop("checksum", None)
        actual = hashlib.sha256(_canonical(payload)).hexdigest()
        if recorded != actual:
            logger.warning("skipping snapshot %s: checksum mismatch",
                           path.name)
            return None
        return payload

    # -- restore ---------------------------------------------------------

    def restore(self) -> Dict:
        """Read the durable state back; returns::

            {"snapshot": payload_or_None,   # newest snapshot that validates
             "tail": [records...],          # journal records beyond it
             "torn": bool}                  # a torn tail was truncated

        Also primes ``journal_seq`` / ``snapshot_seq`` so subsequent
        appends continue the sequence.
        """
        snapshot = None
        snap_seq = 0
        for seq, path in self._snapshot_files():
            payload = self._load_snapshot(path)
            if payload is not None:
                snapshot = payload
                snap_seq = int(payload["journal_seq"])
                break
        records, torn = self._read_journal()
        tail = [r for r in records if int(r.get("seq", 0)) > snap_seq]
        self.journal_seq = max([snap_seq] +
                               [int(r.get("seq", 0)) for r in records])
        self.snapshot_seq = snap_seq
        return {"snapshot": snapshot, "tail": tail, "torn": torn}

    # -- lifecycle -------------------------------------------------------

    @property
    def journal_lag(self) -> int:
        """Records admitted since the last snapshot (replay length)."""
        return self.journal_seq - self.snapshot_seq

    @property
    def last_snapshot_age_s(self) -> Optional[float]:
        if self.last_snapshot_monotonic is None:
            return None
        return time.monotonic() - self.last_snapshot_monotonic

    def close(self) -> None:
        self.flush()
        if self._fh is not None:
            self._fh.close()
            self._fh = None
