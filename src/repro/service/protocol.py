"""Request-layer protocol for the routing service daemon.

One frame = one ``\\n``-terminated JSON object.  The discipline mirrors
:mod:`repro.core.wire` (the remote rung's binary protocol), re-applied
at the request layer:

* **versioned hello** — the first frame on every connection must be
  ``{"verb": "hello", "v": SERVICE_VERSION}``; a version-skewed client
  gets one typed error naming both versions, then the connection drops;
* **typed error replies** — every failure is
  ``{"ok": false, "error": {"code": ..., "message": ...}}`` with a
  stable code vocabulary (asserted exactly by the tests);
* **loud rejection of malformed frames** — a line that is not a JSON
  object (or overflows the line limit) earns a ``malformed-frame``
  error and the connection is closed: a desynced peer must never be
  silently resynchronised.

Request/response envelopes::

    -> {"verb": "sigma", "id": 7, "session": "...", "start_seed": 3}
    <- {"ok": true, "verb": "sigma", "id": 7, "converged": true, ...}
    <- {"ok": false, "verb": "sigma", "id": 7,
        "error": {"code": "no-session", "message": "..."}}

``id`` is an optional client-chosen correlation token, echoed verbatim.
The verb vocabulary, cache-key semantics and failure behaviour are
documented normatively in ``docs/service.md``.
"""

from __future__ import annotations

import hashlib
import json
import math
import random
from typing import Any, Dict, List, Optional

from ..core.asynchronous import random_state
from ..core.schedule import (
    FixedDelaySchedule,
    RandomSchedule,
    RoundRobinSchedule,
    SynchronousSchedule,
)
from ..core.state import RoutingState

__all__ = [
    "SERVICE_VERSION",
    "MAX_LINE",
    "ServiceError",
    "ERR_VERSION_SKEW",
    "ERR_MALFORMED",
    "ERR_HELLO_REQUIRED",
    "ERR_UNKNOWN_VERB",
    "ERR_BAD_REQUEST",
    "ERR_NO_SESSION",
    "ERR_ENGINE",
    "ERR_SERVER",
    "ERR_BUSY",
    "ERR_DRAINING",
    "ERR_INTERNAL",
    "FATAL_CODES",
    "encode_frame",
    "error_reply",
    "schedule_from_spec",
    "schedule_cache_key",
    "start_state",
    "state_matrix",
    "state_digest",
    "percentile",
]

#: Protocol version.  Bump on any incompatible change to the verb
#: vocabulary, envelope layout, or cache-key semantics; a client
#: whose ``hello`` carries a different version is rejected with
#: :data:`ERR_VERSION_SKEW`.
SERVICE_VERSION = 1

#: Sanity bound on one request line (bytes).  A longer line means the
#: peer is not framing requests; the connection is dropped loudly.
MAX_LINE = 4 * 1024 * 1024

# Stable error-code vocabulary (tests assert these exactly).
ERR_VERSION_SKEW = "version-skew"      # hello carried a different version
ERR_MALFORMED = "malformed-frame"      # not a JSON object / line too long
ERR_HELLO_REQUIRED = "hello-required"  # first frame was not a hello
ERR_UNKNOWN_VERB = "unknown-verb"      # verb outside the vocabulary
ERR_BAD_REQUEST = "bad-request"        # missing/invalid parameters
ERR_NO_SESSION = "no-session"          # unknown (or evicted) session id
ERR_ENGINE = "engine-error"            # engine negotiation/run failure
ERR_SERVER = "server-error"            # unexpected server-side failure
ERR_BUSY = "busy"                      # load shed: retry after the hint
ERR_DRAINING = "draining"              # graceful drain: not admitting work
ERR_INTERNAL = "internal"              # server bug; carries correlation id

#: codes after which the server closes the connection (the peer is
#: either desynced or speaking another protocol version; continuing
#: would be a silent resync).  Everything else keeps the session open.
FATAL_CODES = frozenset(
    {ERR_VERSION_SKEW, ERR_MALFORMED, ERR_HELLO_REQUIRED})


class ServiceError(RuntimeError):
    """A typed error reply, raised client-side (and used server-side to
    carry a code to the reply encoder).  ``code`` is from the stable
    vocabulary above.  Extra error-envelope fields (``retry_after_ms``
    on :data:`ERR_BUSY`, ``correlation_id`` on :data:`ERR_INTERNAL`)
    ride on :attr:`extra`."""

    def __init__(self, code: str, message: str, **extra: Any):
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.message = message
        self.extra = extra

    @property
    def retry_after_ms(self) -> Optional[float]:
        """The server's backoff hint on a ``busy`` shed, else ``None``."""
        value = self.extra.get("retry_after_ms")
        return float(value) if value is not None else None


def encode_frame(obj: Dict[str, Any]) -> bytes:
    """One newline-terminated JSON frame."""
    return json.dumps(obj, separators=(",", ":")).encode("utf-8") + b"\n"


def error_reply(code: str, message: str, verb: Optional[str] = None,
                req_id: Any = None, **extra: Any) -> Dict[str, Any]:
    """The typed error envelope for one failed request."""
    reply: Dict[str, Any] = {
        "ok": False,
        "error": dict({"code": code, "message": message}, **extra),
    }
    if verb is not None:
        reply["verb"] = verb
    if req_id is not None:
        reply["id"] = req_id
    return reply


# ----------------------------------------------------------------------
# Schedule specs: JSON-describable δ schedules
# ----------------------------------------------------------------------


def schedule_from_spec(spec: Dict[str, Any], n: int):
    """Build a :class:`~repro.core.schedule.Schedule` from a JSON spec.

    ``spec["kind"]`` selects the family; the remaining keys are the
    family's constructor parameters.  Seeded families denote schedules
    under :data:`~repro.core.schedule.RandomSchedule.SCHEDULE_SEED_VERSION`
    (the daemon folds that version into every cache key and reports it
    in the reply, so a recorded answer can never silently outlive a
    seed-semantics change).
    """
    if not isinstance(spec, dict) or "kind" not in spec:
        raise ServiceError(ERR_BAD_REQUEST,
                           "schedule spec must be an object with a 'kind'")
    kind = spec["kind"]
    try:
        if kind == "synchronous":
            return SynchronousSchedule(n)
        if kind == "round-robin":
            return RoundRobinSchedule(n)
        if kind == "fixed-delay":
            return FixedDelaySchedule(n, delay=int(spec.get("delay", 3)))
        if kind == "random":
            return RandomSchedule(
                n, seed=int(spec.get("seed", 0)),
                activation_prob=float(spec.get("activation_prob", 0.5)),
                max_delay=int(spec.get("max_delay", 8)))
    except (TypeError, ValueError) as exc:
        raise ServiceError(
            ERR_BAD_REQUEST, f"bad schedule spec {spec!r}: {exc}") from None
    raise ServiceError(
        ERR_BAD_REQUEST,
        f"unknown schedule kind {kind!r}; choose from "
        "('synchronous', 'round-robin', 'fixed-delay', 'random')")


def schedule_cache_key(spec: Dict[str, Any]) -> str:
    """Canonical string form of a schedule spec (sorted keys), so two
    requests describing the same schedule share one cache entry."""
    return json.dumps(spec, sort_keys=True, separators=(",", ":"))


# ----------------------------------------------------------------------
# Start states and state serialisation
# ----------------------------------------------------------------------


def start_state(network, start_seed: Optional[int]) -> RoutingState:
    """The start state a request denotes: the identity matrix when
    ``start_seed`` is ``None``, else the Theorem 7/11 arbitrary state
    drawn from ``random.Random(start_seed)`` — deterministic, so a
    direct :class:`~repro.session.RoutingSession` call with the same
    seed reproduces the service's answer bit for bit."""
    if start_seed is None:
        return RoutingState.identity(network.algebra, network.n)
    return random_state(network.algebra, network.n,
                        random.Random(int(start_seed)))


def state_matrix(state: RoutingState) -> List[List[str]]:
    """The state as an ``n × n`` matrix of canonical route strings
    (JSON-safe for every algebra, including object-valued routes)."""
    return [[str(route) for route in row] for row in state.rows]


def state_digest(state: RoutingState) -> str:
    """A short hex digest of :func:`state_matrix` — what cached replies
    carry instead of the full matrix, and what the bit-identity tests
    compare across the service boundary."""
    h = hashlib.sha256()
    for row in state.rows:
        h.update("\x1f".join(str(route) for route in row).encode("utf-8"))
        h.update(b"\x1e")
    return h.hexdigest()


def percentile(values: List[float], q: float) -> float:
    """Nearest-rank percentile (``q`` in [0, 100]) of ``values``."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]
