"""Client helpers for the routing service daemon.

:class:`ServiceClient` is the blocking helper (scripts, tests, the
quickstart example); :class:`AsyncServiceClient` is the ``asyncio``
variant that ``benchmarks/load_test.py`` fans out by the hundred.  Both
perform the versioned hello on connect, raise
:class:`~repro.service.protocol.ServiceError` carrying the server's
typed code on any error reply, and expose one method per verb.

Both clients support *opt-in* retry (``retries=N``): a ``busy`` shed is
retried after a jittered exponential backoff honoring the server's
``retry_after_ms`` hint, and a read timeout (a request or reply frame
lost to chaos/fault injection) is retried by *resending* the request.
Retry mode stamps every request with a client-chosen ``id`` and skips
stale replies whose echoed id does not match, so a late duplicate reply
can never desynchronise the stream.  Resends assume the daemon's verbs
are idempotent (they are: queries are cached, mutations are absolute).
"""

from __future__ import annotations

import asyncio
import json
import random
import socket
import time
from typing import Any, Dict, Optional

from .protocol import (
    ERR_BUSY,
    ERR_MALFORMED,
    MAX_LINE,
    SERVICE_VERSION,
    ServiceError,
    encode_frame,
)

__all__ = ["ServiceClient", "AsyncServiceClient"]


def _check(reply: Dict[str, Any]) -> Dict[str, Any]:
    """Raise the server's typed error, else pass the reply through."""
    if not isinstance(reply, dict):
        raise ServiceError(ERR_MALFORMED,
                           f"server sent a non-object reply: {reply!r}")
    if not reply.get("ok"):
        err = reply.get("error") or {}
        extra = {k: v for k, v in err.items()
                 if k not in ("code", "message")}
        raise ServiceError(err.get("code", "server-error"),
                           err.get("message", "unspecified server error"),
                           **extra)
    return reply


def _stale(reply: Any, want: Any) -> bool:
    """True when ``reply`` is a leftover from a timed-out earlier
    attempt (its echoed id exists and differs from ``want``)."""
    if want is None or not isinstance(reply, dict):
        return False
    echoed = reply.get("id")
    return echoed is not None and echoed != want


class _RetryMixin:
    """Shared retry policy: jittered exponential backoff, honoring the
    server's ``retry_after_ms`` hint when one rode on the error."""

    def _init_retry(self, retries: int, backoff_base: float,
                    backoff_cap: float) -> None:
        self._retries = max(0, int(retries))
        self._backoff_base = float(backoff_base)
        self._backoff_cap = float(backoff_cap)
        self._req_seq = 0

    def _backoff_s(self, attempt: int,
                   retry_after_ms: Optional[float]) -> float:
        base = self._backoff_base * (2 ** attempt)
        if retry_after_ms:
            base = max(base, retry_after_ms / 1000.0)
        return min(base, self._backoff_cap) * (0.5 + random.random() * 0.5)

    def _stamp(self, req: Dict[str, Any]) -> Dict[str, Any]:
        """Retry mode: give the request a client id so a resend can
        recognise (and discard) the stale reply of a lost attempt."""
        req = dict(req)
        if req.get("id") is None:
            self._req_seq += 1
            req["id"] = f"rt-{self._req_seq}"
        return req


class _VerbMixin:
    """Shared verb-to-request plumbing; subclasses provide ``request``."""

    @staticmethod
    def _load_req(algebra: str, n: int, topology: str, seed: int,
                  engine: Optional[str]) -> Dict[str, Any]:
        req = {"verb": "load", "algebra": algebra, "n": n,
               "topology": topology, "seed": seed}
        if engine is not None:
            req["engine"] = engine
        return req

    @staticmethod
    def _sigma_req(session: str, start_seed: Optional[int],
                   max_rounds: int, include_state: bool) -> Dict[str, Any]:
        req: Dict[str, Any] = {"verb": "sigma", "session": session,
                               "max_rounds": max_rounds}
        if start_seed is not None:
            req["start_seed"] = start_seed
        if include_state:
            req["include_state"] = True
        return req

    @staticmethod
    def _routes_req(session: str, node: Optional[int],
                    dest: Optional[int], start_seed: Optional[int],
                    max_rounds: int) -> Dict[str, Any]:
        req: Dict[str, Any] = {"verb": "routes", "session": session,
                               "max_rounds": max_rounds}
        if node is not None:
            req["node"] = node
        if dest is not None:
            req["dest"] = dest
        if start_seed is not None:
            req["start_seed"] = start_seed
        return req

    @staticmethod
    def _delta_req(session: str, schedule: Optional[Dict[str, Any]],
                   start_seed: Optional[int], max_steps: int,
                   include_state: bool) -> Dict[str, Any]:
        req: Dict[str, Any] = {"verb": "delta", "session": session,
                               "max_steps": max_steps}
        if schedule is not None:
            req["schedule"] = schedule
        if start_seed is not None:
            req["start_seed"] = start_seed
        if include_state:
            req["include_state"] = True
        return req


class ServiceClient(_VerbMixin, _RetryMixin):
    """Blocking JSON-over-TCP client (one socket, hello on connect).

    ``retries=N`` opts into retry: ``busy`` sheds back off (honoring
    the server's ``retry_after_ms``) and a read timeout (the socket
    ``timeout``) resends the request instead of failing.

    Usage::

        with ServiceClient("127.0.0.1", 7432) as client:
            sid = client.load("hop-count", n=32)["session"]
            report = client.sigma(sid)
            client.set_edge(sid, 0, 1, edge_seed=7)   # invalidates cache
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *,
                 timeout: float = 60.0, retries: int = 0,
                 backoff_base: float = 0.05, backoff_cap: float = 2.0):
        self.host = host
        self.port = port
        self._init_retry(retries, backoff_base, backoff_cap)
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rb")
        self.server_hello = self.request(
            {"verb": "hello", "v": SERVICE_VERSION})

    # -- plumbing --------------------------------------------------------

    def request(self, req: Dict[str, Any]) -> Dict[str, Any]:
        """One request/reply round trip; raises ``ServiceError`` on an
        error reply or a dropped connection.  With ``retries`` set,
        ``busy`` sheds and read timeouts are retried first."""
        if self._retries <= 0:
            return self._roundtrip(req)
        req = self._stamp(req)
        for attempt in range(self._retries + 1):
            try:
                return self._roundtrip(req)
            except ServiceError as exc:
                if exc.code != ERR_BUSY or attempt >= self._retries:
                    raise
                time.sleep(self._backoff_s(attempt, exc.retry_after_ms))
            except socket.timeout:
                if attempt >= self._retries:
                    raise
                time.sleep(self._backoff_s(attempt, None))
        raise AssertionError("unreachable")  # pragma: no cover

    def _roundtrip(self, req: Dict[str, Any]) -> Dict[str, Any]:
        self._sock.sendall(encode_frame(req))
        want = req.get("id")
        while True:
            line = self._file.readline(MAX_LINE)
            if not line:
                raise ServiceError(
                    ERR_MALFORMED,
                    "server closed the connection without replying")
            reply = json.loads(line.decode("utf-8"))
            if _stale(reply, want):
                continue  # late reply from a timed-out earlier attempt
            return _check(reply)

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- verbs -----------------------------------------------------------

    def load(self, algebra: str, n: int, *, topology: str = "random",
             seed: int = 0, engine: Optional[str] = None) -> Dict[str, Any]:
        return self.request(self._load_req(algebra, n, topology, seed,
                                           engine))

    def sigma(self, session: str, *, start_seed: Optional[int] = None,
              max_rounds: int = 10_000,
              include_state: bool = False) -> Dict[str, Any]:
        return self.request(self._sigma_req(session, start_seed,
                                            max_rounds, include_state))

    def delta(self, session: str, *,
              schedule: Optional[Dict[str, Any]] = None,
              start_seed: Optional[int] = None, max_steps: int = 2_000,
              include_state: bool = False) -> Dict[str, Any]:
        return self.request(self._delta_req(session, schedule, start_seed,
                                            max_steps, include_state))

    def routes(self, session: str, *, node: Optional[int] = None,
               dest: Optional[int] = None,
               start_seed: Optional[int] = None,
               max_rounds: int = 10_000) -> Dict[str, Any]:
        """One row (``node=``) or column (``dest=``) of the fixed point
        as route strings — O(n) on the wire, cheaper than asking
        ``sigma`` for the full state matrix."""
        return self.request(self._routes_req(session, node, dest,
                                             start_seed, max_rounds))

    def convergence(self, session: str, *, n_starts: int = 3,
                    seed: int = 0,
                    max_steps: int = 2_000) -> Dict[str, Any]:
        return self.request({"verb": "convergence", "session": session,
                             "n_starts": n_starts, "seed": seed,
                             "max_steps": max_steps})

    def set_edge(self, session: str, i: int, k: int, *,
                 edge_seed: int = 0) -> Dict[str, Any]:
        return self.request({"verb": "set_edge", "session": session,
                             "i": i, "k": k, "edge_seed": edge_seed})

    def remove_edge(self, session: str, i: int, k: int) -> Dict[str, Any]:
        return self.request({"verb": "remove_edge", "session": session,
                             "i": i, "k": k})

    def stats(self) -> Dict[str, Any]:
        return self.request({"verb": "stats"})

    def health(self) -> Dict[str, Any]:
        """Lifecycle state (``restoring``/``ready``/``draining``) plus
        durability lag — served in every state, even mid-restore."""
        return self.request({"verb": "health"})

    def snapshot(self) -> Dict[str, Any]:
        """Force a durable snapshot now (daemon must have a state dir)."""
        return self.request({"verb": "snapshot"})

    def shutdown(self) -> Dict[str, Any]:
        return self.request({"verb": "shutdown"})


class AsyncServiceClient(_VerbMixin, _RetryMixin):
    """``asyncio`` client — what the load generator fans out.

    ``retries=N`` opts into retry: ``busy`` sheds back off (honoring
    the server's ``retry_after_ms``) and — when ``request_timeout`` is
    set — a reply that never arrives resends the request.

    Usage::

        client = await AsyncServiceClient.connect(host, port)
        try:
            sid = (await client.load("hop-count", n=64))["session"]
            report = await client.sigma(sid)
        finally:
            await client.close()
    """

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter, *, retries: int = 0,
                 backoff_base: float = 0.05, backoff_cap: float = 2.0,
                 request_timeout: Optional[float] = None):
        self._reader = reader
        self._writer = writer
        self._init_retry(retries, backoff_base, backoff_cap)
        self._request_timeout = request_timeout
        self.server_hello: Optional[Dict[str, Any]] = None

    @classmethod
    async def connect(cls, host: str = "127.0.0.1", port: int = 0, *,
                      retries: int = 0, backoff_base: float = 0.05,
                      backoff_cap: float = 2.0,
                      request_timeout: Optional[float] = None,
                      ) -> "AsyncServiceClient":
        reader, writer = await asyncio.open_connection(host, port,
                                                       limit=MAX_LINE)
        client = cls(reader, writer, retries=retries,
                     backoff_base=backoff_base, backoff_cap=backoff_cap,
                     request_timeout=request_timeout)
        client.server_hello = await client.request(
            {"verb": "hello", "v": SERVICE_VERSION})
        return client

    async def request(self, req: Dict[str, Any]) -> Dict[str, Any]:
        if self._retries <= 0:
            return await self._roundtrip(req)
        req = self._stamp(req)
        for attempt in range(self._retries + 1):
            try:
                return await self._roundtrip(req)
            except ServiceError as exc:
                if exc.code != ERR_BUSY or attempt >= self._retries:
                    raise
                await asyncio.sleep(
                    self._backoff_s(attempt, exc.retry_after_ms))
            except asyncio.TimeoutError:
                if attempt >= self._retries:
                    raise
                await asyncio.sleep(self._backoff_s(attempt, None))
        raise AssertionError("unreachable")  # pragma: no cover

    async def _roundtrip(self, req: Dict[str, Any]) -> Dict[str, Any]:
        self._writer.write(encode_frame(req))
        await self._writer.drain()
        want = req.get("id")
        while True:
            read = self._reader.readline()
            if self._request_timeout is not None:
                line = await asyncio.wait_for(read, self._request_timeout)
            else:
                line = await read
            if not line:
                raise ServiceError(
                    ERR_MALFORMED,
                    "server closed the connection without replying")
            reply = json.loads(line.decode("utf-8"))
            if _stale(reply, want):
                continue  # late reply from a timed-out earlier attempt
            return _check(reply)

    async def close(self) -> None:
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    # -- verbs -----------------------------------------------------------

    async def load(self, algebra: str, n: int, *, topology: str = "random",
                   seed: int = 0,
                   engine: Optional[str] = None) -> Dict[str, Any]:
        return await self.request(self._load_req(algebra, n, topology,
                                                 seed, engine))

    async def sigma(self, session: str, *,
                    start_seed: Optional[int] = None,
                    max_rounds: int = 10_000,
                    include_state: bool = False) -> Dict[str, Any]:
        return await self.request(self._sigma_req(
            session, start_seed, max_rounds, include_state))

    async def delta(self, session: str, *,
                    schedule: Optional[Dict[str, Any]] = None,
                    start_seed: Optional[int] = None,
                    max_steps: int = 2_000,
                    include_state: bool = False) -> Dict[str, Any]:
        return await self.request(self._delta_req(
            session, schedule, start_seed, max_steps, include_state))

    async def routes(self, session: str, *, node: Optional[int] = None,
                     dest: Optional[int] = None,
                     start_seed: Optional[int] = None,
                     max_rounds: int = 10_000) -> Dict[str, Any]:
        """One row (``node=``) or column (``dest=``) of the fixed point
        as route strings — O(n) on the wire, cheaper than asking
        ``sigma`` for the full state matrix."""
        return await self.request(self._routes_req(session, node, dest,
                                                   start_seed, max_rounds))

    async def convergence(self, session: str, *, n_starts: int = 3,
                          seed: int = 0,
                          max_steps: int = 2_000) -> Dict[str, Any]:
        return await self.request({"verb": "convergence",
                                   "session": session,
                                   "n_starts": n_starts, "seed": seed,
                                   "max_steps": max_steps})

    async def set_edge(self, session: str, i: int, k: int, *,
                       edge_seed: int = 0) -> Dict[str, Any]:
        return await self.request({"verb": "set_edge", "session": session,
                                   "i": i, "k": k,
                                   "edge_seed": edge_seed})

    async def remove_edge(self, session: str, i: int,
                          k: int) -> Dict[str, Any]:
        return await self.request({"verb": "remove_edge",
                                   "session": session, "i": i, "k": k})

    async def stats(self) -> Dict[str, Any]:
        return await self.request({"verb": "stats"})

    async def health(self) -> Dict[str, Any]:
        """Lifecycle state (``restoring``/``ready``/``draining``) plus
        durability lag — served in every state, even mid-restore."""
        return await self.request({"verb": "health"})

    async def snapshot(self) -> Dict[str, Any]:
        """Force a durable snapshot now (daemon must have a state dir)."""
        return await self.request({"verb": "snapshot"})

    async def shutdown(self) -> Dict[str, Any]:
        return await self.request({"verb": "shutdown"})
