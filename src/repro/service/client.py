"""Client helpers for the routing service daemon.

:class:`ServiceClient` is the blocking helper (scripts, tests, the
quickstart example); :class:`AsyncServiceClient` is the ``asyncio``
variant that ``benchmarks/load_test.py`` fans out by the hundred.  Both
perform the versioned hello on connect, raise
:class:`~repro.service.protocol.ServiceError` carrying the server's
typed code on any error reply, and expose one method per verb.
"""

from __future__ import annotations

import asyncio
import json
import socket
from typing import Any, Dict, Optional

from .protocol import (
    ERR_MALFORMED,
    MAX_LINE,
    SERVICE_VERSION,
    ServiceError,
    encode_frame,
)

__all__ = ["ServiceClient", "AsyncServiceClient"]


def _check(reply: Dict[str, Any]) -> Dict[str, Any]:
    """Raise the server's typed error, else pass the reply through."""
    if not isinstance(reply, dict):
        raise ServiceError(ERR_MALFORMED,
                           f"server sent a non-object reply: {reply!r}")
    if not reply.get("ok"):
        err = reply.get("error") or {}
        raise ServiceError(err.get("code", "server-error"),
                           err.get("message", "unspecified server error"))
    return reply


class _VerbMixin:
    """Shared verb-to-request plumbing; subclasses provide ``request``."""

    @staticmethod
    def _load_req(algebra: str, n: int, topology: str, seed: int,
                  engine: Optional[str]) -> Dict[str, Any]:
        req = {"verb": "load", "algebra": algebra, "n": n,
               "topology": topology, "seed": seed}
        if engine is not None:
            req["engine"] = engine
        return req

    @staticmethod
    def _sigma_req(session: str, start_seed: Optional[int],
                   max_rounds: int, include_state: bool) -> Dict[str, Any]:
        req: Dict[str, Any] = {"verb": "sigma", "session": session,
                               "max_rounds": max_rounds}
        if start_seed is not None:
            req["start_seed"] = start_seed
        if include_state:
            req["include_state"] = True
        return req

    @staticmethod
    def _delta_req(session: str, schedule: Optional[Dict[str, Any]],
                   start_seed: Optional[int], max_steps: int,
                   include_state: bool) -> Dict[str, Any]:
        req: Dict[str, Any] = {"verb": "delta", "session": session,
                               "max_steps": max_steps}
        if schedule is not None:
            req["schedule"] = schedule
        if start_seed is not None:
            req["start_seed"] = start_seed
        if include_state:
            req["include_state"] = True
        return req


class ServiceClient(_VerbMixin):
    """Blocking JSON-over-TCP client (one socket, hello on connect).

    Usage::

        with ServiceClient("127.0.0.1", 7432) as client:
            sid = client.load("hop-count", n=32)["session"]
            report = client.sigma(sid)
            client.set_edge(sid, 0, 1, edge_seed=7)   # invalidates cache
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *,
                 timeout: float = 60.0):
        self.host = host
        self.port = port
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rb")
        self.server_hello = self.request(
            {"verb": "hello", "v": SERVICE_VERSION})

    # -- plumbing --------------------------------------------------------

    def request(self, req: Dict[str, Any]) -> Dict[str, Any]:
        """One request/reply round trip; raises ``ServiceError`` on an
        error reply or a dropped connection."""
        self._sock.sendall(encode_frame(req))
        line = self._file.readline(MAX_LINE)
        if not line:
            raise ServiceError(
                ERR_MALFORMED,
                "server closed the connection without replying")
        return _check(json.loads(line.decode("utf-8")))

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- verbs -----------------------------------------------------------

    def load(self, algebra: str, n: int, *, topology: str = "random",
             seed: int = 0, engine: Optional[str] = None) -> Dict[str, Any]:
        return self.request(self._load_req(algebra, n, topology, seed,
                                           engine))

    def sigma(self, session: str, *, start_seed: Optional[int] = None,
              max_rounds: int = 10_000,
              include_state: bool = False) -> Dict[str, Any]:
        return self.request(self._sigma_req(session, start_seed,
                                            max_rounds, include_state))

    def delta(self, session: str, *,
              schedule: Optional[Dict[str, Any]] = None,
              start_seed: Optional[int] = None, max_steps: int = 2_000,
              include_state: bool = False) -> Dict[str, Any]:
        return self.request(self._delta_req(session, schedule, start_seed,
                                            max_steps, include_state))

    def convergence(self, session: str, *, n_starts: int = 3,
                    seed: int = 0,
                    max_steps: int = 2_000) -> Dict[str, Any]:
        return self.request({"verb": "convergence", "session": session,
                             "n_starts": n_starts, "seed": seed,
                             "max_steps": max_steps})

    def set_edge(self, session: str, i: int, k: int, *,
                 edge_seed: int = 0) -> Dict[str, Any]:
        return self.request({"verb": "set_edge", "session": session,
                             "i": i, "k": k, "edge_seed": edge_seed})

    def remove_edge(self, session: str, i: int, k: int) -> Dict[str, Any]:
        return self.request({"verb": "remove_edge", "session": session,
                             "i": i, "k": k})

    def stats(self) -> Dict[str, Any]:
        return self.request({"verb": "stats"})

    def shutdown(self) -> Dict[str, Any]:
        return self.request({"verb": "shutdown"})


class AsyncServiceClient(_VerbMixin):
    """``asyncio`` client — what the load generator fans out.

    Usage::

        client = await AsyncServiceClient.connect(host, port)
        try:
            sid = (await client.load("hop-count", n=64))["session"]
            report = await client.sigma(sid)
        finally:
            await client.close()
    """

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter):
        self._reader = reader
        self._writer = writer
        self.server_hello: Optional[Dict[str, Any]] = None

    @classmethod
    async def connect(cls, host: str = "127.0.0.1",
                      port: int = 0) -> "AsyncServiceClient":
        reader, writer = await asyncio.open_connection(host, port,
                                                       limit=MAX_LINE)
        client = cls(reader, writer)
        client.server_hello = await client.request(
            {"verb": "hello", "v": SERVICE_VERSION})
        return client

    async def request(self, req: Dict[str, Any]) -> Dict[str, Any]:
        self._writer.write(encode_frame(req))
        await self._writer.drain()
        line = await self._reader.readline()
        if not line:
            raise ServiceError(
                ERR_MALFORMED,
                "server closed the connection without replying")
        return _check(json.loads(line.decode("utf-8")))

    async def close(self) -> None:
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    # -- verbs -----------------------------------------------------------

    async def load(self, algebra: str, n: int, *, topology: str = "random",
                   seed: int = 0,
                   engine: Optional[str] = None) -> Dict[str, Any]:
        return await self.request(self._load_req(algebra, n, topology,
                                                 seed, engine))

    async def sigma(self, session: str, *,
                    start_seed: Optional[int] = None,
                    max_rounds: int = 10_000,
                    include_state: bool = False) -> Dict[str, Any]:
        return await self.request(self._sigma_req(
            session, start_seed, max_rounds, include_state))

    async def delta(self, session: str, *,
                    schedule: Optional[Dict[str, Any]] = None,
                    start_seed: Optional[int] = None,
                    max_steps: int = 2_000,
                    include_state: bool = False) -> Dict[str, Any]:
        return await self.request(self._delta_req(
            session, schedule, start_seed, max_steps, include_state))

    async def convergence(self, session: str, *, n_starts: int = 3,
                          seed: int = 0,
                          max_steps: int = 2_000) -> Dict[str, Any]:
        return await self.request({"verb": "convergence",
                                   "session": session,
                                   "n_starts": n_starts, "seed": seed,
                                   "max_steps": max_steps})

    async def set_edge(self, session: str, i: int, k: int, *,
                       edge_seed: int = 0) -> Dict[str, Any]:
        return await self.request({"verb": "set_edge", "session": session,
                                   "i": i, "k": k,
                                   "edge_seed": edge_seed})

    async def remove_edge(self, session: str, i: int,
                          k: int) -> Dict[str, Any]:
        return await self.request({"verb": "remove_edge",
                                   "session": session, "i": i, "k": k})

    async def stats(self) -> Dict[str, Any]:
        return await self.request({"verb": "stats"})

    async def shutdown(self) -> Dict[str, Any]:
        return await self.request({"verb": "shutdown"})
