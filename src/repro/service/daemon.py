"""The routing-as-a-service daemon: warm sessions behind a TCP socket.

:class:`RoutingServiceDaemon` is a stdlib-``asyncio`` JSON-over-TCP
server.  It owns a registry of warm :class:`~repro.session.RoutingSession`
objects — engine negotiated once, adjacency shared with the incremental
engine's dirty-set tracking — so a client streams ``set_edge`` /
``remove_edge`` mutations and re-queries without ever paying a rebuild.
Each session carries a fixed-point/report cache keyed by

    (verb, adjacency.version, algebra, start seed,
     canonical schedule spec, SCHEDULE_SEED_VERSION, request knobs)

so a repeated query is an O(1) cache hit and a mutation — which bumps
``adjacency.version`` — invalidates exactly the entries computed
against the old topology (stale keys can never be looked up again; the
whole per-session cache is dropped eagerly so memory tracks the live
topology).

Concurrency model: the event loop only parses frames and consults
caches; fixed-point computes run in the default thread-pool executor
under a per-session :class:`asyncio.Lock`, so concurrent clients on one
warm session serialize safely (first one computes, the rest hit the
cache) while other sessions and connections stay responsive.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import logging
import random
import threading
import uuid
from collections import OrderedDict, deque
from time import perf_counter
from typing import Any, Dict, Optional, Tuple

from ..core.faults import FaultPlan, RECV_CLOSE, RECV_DROP
from ..core.schedule import RandomSchedule
from ..session import EngineSpec, RoutingSession
from .protocol import (
    ERR_BAD_REQUEST,
    ERR_BUSY,
    ERR_ENGINE,
    ERR_HELLO_REQUIRED,
    ERR_INTERNAL,
    ERR_MALFORMED,
    ERR_NO_SESSION,
    ERR_UNKNOWN_VERB,
    ERR_VERSION_SKEW,
    FATAL_CODES,
    MAX_LINE,
    SERVICE_VERSION,
    ServiceError,
    encode_frame,
    error_reply,
    percentile,
    schedule_cache_key,
    schedule_from_spec,
    start_state,
    state_digest,
    state_matrix,
)

__all__ = ["RoutingServiceDaemon", "serve"]

logger = logging.getLogger("repro.service")

_QUERY_VERBS = ("sigma", "delta", "convergence")


class _SessionEntry:
    """One warm session: network + RoutingSession + its report cache."""

    __slots__ = ("sid", "network", "session", "factory", "lock", "cache",
                 "hits", "misses", "invalidated", "mutations", "params")

    def __init__(self, sid: str, network, session: RoutingSession,
                 factory, params: Dict[str, Any]):
        self.sid = sid
        self.network = network
        self.session = session
        self.factory = factory
        self.params = params          # load parameters, echoed by stats
        self.lock = asyncio.Lock()    # serializes computes + mutations
        self.cache: "OrderedDict[Tuple, Dict[str, Any]]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.invalidated = 0
        self.mutations = 0

    @property
    def version(self) -> int:
        return self.network.adjacency.version

    def invalidate(self) -> int:
        """Drop every cached report (they were computed against the
        pre-mutation topology version); returns how many were dropped."""
        dropped = len(self.cache)
        self.cache.clear()
        self.invalidated += dropped
        return dropped


class RoutingServiceDaemon:
    """A long-lived JSON-over-TCP routing service (see module docs and
    ``docs/service.md`` for the protocol).

    Parameters
    ----------
    host, port:
        Bind address; ``port=0`` picks an ephemeral port (read it back
        from :attr:`port` after :meth:`start`).
    engine:
        Default :class:`~repro.session.EngineSpec` engine for sessions
        whose ``load`` does not name one (ladder rung or ``"auto"``).
    max_sessions:
        Warm-session registry bound; loading past it evicts (and
        closes) the least-recently-used session.
    cache_entries:
        Per-session report-cache bound (LRU).
    max_inflight:
        Backpressure bound: how many query computes may be admitted
        (waiting on a session lock or running in the executor) at once.
        Past it the daemon *sheds* with a typed ``busy`` error carrying
        a ``retry_after_ms`` hint instead of buffering unbounded work.
    fault_plan:
        Optional seeded :class:`~repro.core.faults.FaultPlan` (object,
        dict, or JSON string) injected into the connection stream for
        chaos testing: ``role="daemon"`` rules drop/delay/corrupt
        request lines and reply frames deterministically.
    announce:
        Print the ``listening on host:port`` line on start — what the
        CLI and the CI smoke job parse.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *,
                 engine: str = "auto", max_sessions: int = 8,
                 cache_entries: int = 512, max_inflight: int = 32,
                 fault_plan=None, announce: bool = False):
        EngineSpec(engine=engine)  # fail fast on a bad rung name
        self.host = host
        self.port = port
        self.default_engine = engine
        self.max_sessions = max_sessions
        self.cache_entries = cache_entries
        self.max_inflight = max(1, int(max_inflight))
        self._plan = (FaultPlan.parse(fault_plan)
                      if fault_plan is not None else None)
        self.announce = announce
        self._sessions: "OrderedDict[str, _SessionEntry]" = OrderedDict()
        self._server: Optional[asyncio.base_events.Server] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._ready = threading.Event()
        self._latencies: "deque[float]" = deque(maxlen=8192)
        self._requests = 0
        self._errors = 0
        self._evictions = 0
        self._inflight = 0
        self._shed = 0
        self._started_at: Optional[float] = None

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> None:
        """Bind and start accepting connections (non-blocking)."""
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port, limit=MAX_LINE)
        self.port = self._server.sockets[0].getsockname()[1]
        self._started_at = perf_counter()
        self._ready.set()
        logger.info("service listening on %s:%d (engine=%s, "
                    "max_sessions=%d)", self.host, self.port,
                    self.default_engine, self.max_sessions)
        if self.announce:
            print(f"repro routing service listening on "
                  f"{self.host}:{self.port}", flush=True)

    async def serve_forever(self) -> None:
        """Block until :meth:`request_shutdown` (or the ``shutdown``
        verb) fires."""
        assert self._stop_event is not None, "start() first"
        await self._stop_event.wait()

    async def stop(self) -> None:
        """Stop accepting, close every warm session, release the port."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        loop = asyncio.get_running_loop()
        for entry in list(self._sessions.values()):
            await loop.run_in_executor(None, entry.session.close)
        self._sessions.clear()
        self._ready.clear()
        logger.info("service stopped (%d requests served)", self._requests)

    def request_shutdown(self) -> None:
        """Thread-safe shutdown trigger (used by signal handlers, the
        ``shutdown`` verb, and tests driving the daemon from a thread)."""
        loop, stop = self._loop, self._stop_event
        if loop is not None and stop is not None:
            loop.call_soon_threadsafe(stop.set)

    def wait_ready(self, timeout: float = 10.0) -> bool:
        """Block a *foreign* thread until the daemon is accepting."""
        return self._ready.wait(timeout)

    def run(self) -> None:
        """Synchronous entry point: start, serve until shutdown, stop."""
        asyncio.run(self._run())

    async def _run(self) -> None:
        await self.start()
        try:
            await self.serve_forever()
        finally:
            await self.stop()

    # -- connection handling ---------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        peer = writer.get_extra_info("peername")
        hello_done = False
        injector = (self._plan.injector("daemon")
                    if self._plan is not None else None)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    # over-long line: the peer is not framing requests
                    await self._send(writer, error_reply(
                        ERR_MALFORMED,
                        f"request line exceeds {MAX_LINE} bytes"))
                    break
                except (ConnectionError, asyncio.IncompleteReadError):
                    break
                if not line:
                    break  # orderly EOF
                line = line.strip()
                if not line:
                    continue
                if injector is not None:
                    verdict, line = injector.recv_frame(0, line)
                    if verdict == RECV_DROP:
                        logger.warning("fault injection dropped a request "
                                       "line from peer=%s", peer)
                        continue
                    if verdict == RECV_CLOSE:
                        logger.warning("fault injection severed the "
                                       "connection from peer=%s", peer)
                        break
                t0 = perf_counter()
                reply = await self._handle_frame(line, hello_done)
                verb = reply.get("verb")
                if reply.get("ok") and verb == "hello":
                    hello_done = True
                self._requests += 1
                elapsed = perf_counter() - t0
                self._latencies.append(elapsed)
                err = reply.get("error")
                if err:
                    self._errors += 1
                logger.info(
                    "peer=%s verb=%s ok=%s cached=%s err=%s ms=%.3f",
                    peer, verb, reply.get("ok"),
                    reply.get("cached", False),
                    err["code"] if err else None, elapsed * 1e3)
                severed = await self._send(writer, reply, injector)
                if severed:
                    logger.warning("fault injection severed the reply "
                                   "stream to peer=%s", peer)
                    break
                if err and err["code"] in FATAL_CODES:
                    break  # desynced or version-skewed peer: drop it
                if reply.get("ok") and verb == "shutdown":
                    self.request_shutdown()
                    break
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _send(self, writer: asyncio.StreamWriter,
                    reply: Dict[str, Any], injector=None) -> bool:
        """Write one reply frame; True when a fault severed the stream
        (a ``drop`` fault suppresses the frame but keeps the connection:
        the client's read timeout is the recovery path)."""
        frame = encode_frame(reply)
        close_after = False
        if injector is not None:
            frame, close_after = injector.send_frame(0, frame)
        try:
            if frame is not None:
                writer.write(frame)
                await writer.drain()
        except (ConnectionError, OSError):
            pass  # peer vanished mid-reply; nothing left to tell it
        return close_after

    async def _handle_frame(self, line: bytes,
                            hello_done: bool) -> Dict[str, Any]:
        """Parse and dispatch one frame; always returns a reply dict."""
        try:
            req = json.loads(line.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return error_reply(ERR_MALFORMED, f"frame is not JSON: {exc}")
        if not isinstance(req, dict):
            return error_reply(
                ERR_MALFORMED,
                f"frame must be a JSON object, got {type(req).__name__}")
        verb = req.get("verb")
        req_id = req.get("id")
        if not hello_done:
            if verb != "hello":
                return error_reply(
                    ERR_HELLO_REQUIRED,
                    "first frame must be a versioned hello "
                    '({"verb": "hello", "v": %d})' % SERVICE_VERSION,
                    verb=verb, req_id=req_id)
            client_v = req.get("v")
            if client_v != SERVICE_VERSION:
                return error_reply(
                    ERR_VERSION_SKEW,
                    f"client speaks service protocol v{client_v!r}, "
                    f"server speaks v{SERVICE_VERSION}",
                    verb=verb, req_id=req_id,
                    server_version=SERVICE_VERSION)
            return {"ok": True, "verb": "hello", "id": req_id,
                    "v": SERVICE_VERSION,
                    "schedule_seed_version":
                        RandomSchedule.SCHEDULE_SEED_VERSION}
        try:
            if verb == "hello":
                # idempotent re-hello on an established connection
                return {"ok": True, "verb": "hello", "id": req_id,
                        "v": SERVICE_VERSION,
                        "schedule_seed_version":
                            RandomSchedule.SCHEDULE_SEED_VERSION}
            if verb == "load":
                return await self._handle_load(req)
            if verb in ("set_edge", "remove_edge"):
                return await self._handle_mutation(req, verb)
            if verb in _QUERY_VERBS:
                return await self._handle_query(req, verb)
            if verb == "stats":
                return self._handle_stats(req)
            if verb == "shutdown":
                return {"ok": True, "verb": "shutdown", "id": req_id}
            return error_reply(
                ERR_UNKNOWN_VERB,
                f"unknown verb {verb!r}; the vocabulary is "
                "('hello', 'load', 'set_edge', 'remove_edge', 'sigma', "
                "'delta', 'convergence', 'stats', 'shutdown')",
                verb=verb, req_id=req_id)
        except ServiceError as exc:
            return error_reply(exc.code, exc.message, verb=verb,
                               req_id=req_id, **exc.extra)
        except Exception:  # a bug must not kill the server — or leak
            cid = uuid.uuid4().hex[:12]
            logger.exception(
                "unexpected failure handling verb=%r (correlation id %s)",
                verb, cid)
            return error_reply(
                ERR_INTERNAL,
                f"internal server error (correlation id {cid}); "
                "details are in the server log",
                verb=verb, req_id=req_id, correlation_id=cid)

    # -- verb: load ------------------------------------------------------

    async def _handle_load(self, req: Dict[str, Any]) -> Dict[str, Any]:
        algebra = req.get("algebra")
        topology = req.get("topology", "random")
        try:
            n = int(req["n"])
            seed = int(req.get("seed", 0))
        except (KeyError, TypeError, ValueError):
            raise ServiceError(
                ERR_BAD_REQUEST,
                "load requires integer 'n' (and optional integer 'seed')")
        engine = req.get("engine", self.default_engine)
        if not isinstance(algebra, str):
            raise ServiceError(ERR_BAD_REQUEST,
                              "load requires an 'algebra' name")
        if not 2 <= n <= 4096:
            raise ServiceError(ERR_BAD_REQUEST,
                              f"n={n} outside the served range [2, 4096]")
        sid = hashlib.sha256(
            f"{algebra}|{topology}|{n}|{seed}|{engine}".encode()
        ).hexdigest()[:12]
        entry = self._sessions.get(sid)
        if entry is not None:
            self._sessions.move_to_end(sid)
            return self._load_reply(entry, req.get("id"), reused=True)
        loop = asyncio.get_running_loop()
        network, factory = await loop.run_in_executor(
            None, _build_network, algebra, topology, n, seed)
        entry = self._sessions.get(sid)
        if entry is not None:  # a concurrent identical load won the race
            self._sessions.move_to_end(sid)
            return self._load_reply(entry, req.get("id"), reused=True)
        try:
            spec = EngineSpec(engine=engine)
        except ValueError as exc:
            raise ServiceError(ERR_BAD_REQUEST, str(exc)) from None
        try:
            session = RoutingSession(network, spec)
        except Exception as exc:
            raise ServiceError(
                ERR_ENGINE,
                f"session construction failed: {exc}") from None
        entry = _SessionEntry(sid, network, session, factory, {
            "algebra": algebra, "topology": topology, "n": n,
            "seed": seed, "engine": engine})
        while len(self._sessions) >= self.max_sessions:
            victim_sid, victim = self._sessions.popitem(last=False)
            self._evictions += 1
            logger.warning("evicting LRU session %s (%s) to admit %s",
                           victim_sid, victim.params, sid)
            await loop.run_in_executor(None, victim.session.close)
        self._sessions[sid] = entry
        logger.info("loaded session %s: %s", sid, entry.params)
        return self._load_reply(entry, req.get("id"), reused=False)

    @staticmethod
    def _load_reply(entry: _SessionEntry, req_id: Any,
                    reused: bool) -> Dict[str, Any]:
        return {"ok": True, "verb": "load", "id": req_id,
                "session": entry.sid, "reused": reused,
                "n": entry.network.n,
                "algebra": entry.params["algebra"],
                "topology": entry.params["topology"],
                "engine": entry.params["engine"],
                "version": entry.version,
                "edges": sum(1 for _ in entry.network.present_edges())}

    # -- verbs: set_edge / remove_edge -----------------------------------

    def _entry(self, req: Dict[str, Any]) -> _SessionEntry:
        sid = req.get("session")
        entry = self._sessions.get(sid)
        if entry is None:
            raise ServiceError(
                ERR_NO_SESSION,
                f"no warm session {sid!r} (expired, evicted, or never "
                "loaded); issue a 'load' first")
        self._sessions.move_to_end(sid)
        return entry

    async def _handle_mutation(self, req: Dict[str, Any],
                               verb: str) -> Dict[str, Any]:
        entry = self._entry(req)
        n = entry.network.n
        try:
            i, k = int(req["i"]), int(req["k"])
        except (KeyError, TypeError, ValueError):
            raise ServiceError(ERR_BAD_REQUEST,
                              f"{verb} requires integer 'i' and 'k'")
        if not (0 <= i < n and 0 <= k < n):
            raise ServiceError(
                ERR_BAD_REQUEST,
                f"edge ({i}, {k}) outside the 0..{n - 1} node range")
        async with entry.lock:
            if verb == "set_edge":
                edge_seed = int(req.get("edge_seed", 0))
                fn = entry.factory(random.Random(edge_seed), i, k)
                entry.network.set_edge(i, k, fn)
            else:
                entry.network.remove_edge(i, k)
            dropped = entry.invalidate()
            entry.mutations += 1
            version = entry.version
        logger.info("session %s %s(%d, %d) -> version=%d, "
                    "%d cache entries invalidated",
                    entry.sid, verb, i, k, version, dropped)
        return {"ok": True, "verb": verb, "id": req.get("id"),
                "session": entry.sid, "i": i, "k": k,
                "version": version, "invalidated": dropped}

    # -- verbs: sigma / delta / convergence ------------------------------

    async def _handle_query(self, req: Dict[str, Any],
                            verb: str) -> Dict[str, Any]:
        entry = self._entry(req)
        req_id = req.get("id")
        start_seed = req.get("start_seed")
        if start_seed is not None:
            start_seed = int(start_seed)
        include_state = bool(req.get("include_state", False))
        sched_spec: Optional[Dict[str, Any]] = None
        if verb == "sigma":
            max_rounds = int(req.get("max_rounds", 10_000))
            knobs: Tuple = (max_rounds,)
        elif verb == "delta":
            sched_spec = req.get("schedule", {"kind": "round-robin"})
            schedule_from_spec(sched_spec, entry.network.n)  # validate now
            max_steps = int(req.get("max_steps", 2_000))
            knobs = (max_steps,)
        else:  # convergence
            n_starts = int(req.get("n_starts", 3))
            start_seed = int(req.get("seed", 0))  # grid's sampling seed
            max_steps = int(req.get("max_steps", 2_000))
            knobs = (n_starts, max_steps)
        # the fixed-point cache key from the module docs: topology
        # version + algebra + start + schedule (canonical) + the seed
        # semantics version, plus the verb's own knobs.
        key = (verb, entry.version, entry.params["algebra"], start_seed,
               schedule_cache_key(sched_spec) if sched_spec else None,
               RandomSchedule.SCHEDULE_SEED_VERSION, include_state, knobs)
        # backpressure: a query is "in flight" from admission (it may
        # queue on the session lock) until its reply is built; past the
        # bound the daemon sheds with a typed busy + retry hint instead
        # of buffering unbounded work behind a slow compute.
        if self._inflight >= self.max_inflight:
            self._shed += 1
            raise ServiceError(
                ERR_BUSY,
                f"daemon is at its max_inflight={self.max_inflight} "
                "query bound; retry after the hint",
                retry_after_ms=self._retry_hint_ms())
        self._inflight += 1
        try:
            async with entry.lock:
                cached = entry.cache.get(key)
                if cached is not None:
                    entry.hits += 1
                    entry.cache.move_to_end(key)
                    return dict(cached, id=req_id, cached=True)
                entry.misses += 1
                loop = asyncio.get_running_loop()
                if verb == "sigma":
                    body = await loop.run_in_executor(
                        None, self._compute_sigma, entry, start_seed,
                        max_rounds, include_state)
                elif verb == "delta":
                    body = await loop.run_in_executor(
                        None, self._compute_delta, entry, sched_spec,
                        start_seed, max_steps, include_state)
                else:
                    body = await loop.run_in_executor(
                        None, self._compute_convergence, entry, start_seed,
                        n_starts, max_steps)
                entry.cache[key] = body
                while len(entry.cache) > self.cache_entries:
                    entry.cache.popitem(last=False)
        finally:
            self._inflight -= 1
        return dict(body, id=req_id, cached=False)

    def _retry_hint_ms(self) -> float:
        """The ``busy`` reply's backoff hint: the recent median request
        latency, clamped to a sane band."""
        lat = [s * 1e3 for s in self._latencies]
        hint = percentile(lat, 50.0) if lat else 50.0
        return round(min(max(hint, 25.0), 2000.0), 3)

    def _compute_sigma(self, entry: _SessionEntry,
                       start_seed: Optional[int], max_rounds: int,
                       include_state: bool) -> Dict[str, Any]:
        start = start_state(entry.network, start_seed)
        try:
            report = entry.session.sigma(start, max_rounds=max_rounds)
        except Exception as exc:
            raise ServiceError(ERR_ENGINE,
                               f"sigma failed: {exc}") from None
        body = {"ok": True, "verb": "sigma", "session": entry.sid,
                "version": entry.version,
                "converged": report.converged, "rounds": report.rounds,
                "engine": report.resolution.chosen,
                "compute_ms": report.elapsed_s * 1e3,
                "digest": state_digest(report.state)}
        if include_state:
            body["state"] = state_matrix(report.state)
        return body

    def _compute_delta(self, entry: _SessionEntry,
                       sched_spec: Dict[str, Any],
                       start_seed: Optional[int], max_steps: int,
                       include_state: bool) -> Dict[str, Any]:
        schedule = schedule_from_spec(sched_spec, entry.network.n)
        start = start_state(entry.network, start_seed)
        try:
            report = entry.session.delta(schedule, start,
                                         max_steps=max_steps)
        except Exception as exc:
            raise ServiceError(ERR_ENGINE,
                               f"delta failed: {exc}") from None
        body = {"ok": True, "verb": "delta", "session": entry.sid,
                "version": entry.version,
                "converged": report.converged, "steps": report.steps,
                "converged_at": report.converged_at,
                "engine": report.resolution.chosen,
                "compute_ms": report.elapsed_s * 1e3,
                "schedule_seed_version":
                    RandomSchedule.SCHEDULE_SEED_VERSION,
                "digest": state_digest(report.state)}
        if include_state:
            body["state"] = state_matrix(report.state)
        return body

    def _compute_convergence(self, entry: _SessionEntry, seed: int,
                             n_starts: int,
                             max_steps: int) -> Dict[str, Any]:
        try:
            report = entry.session.converges(
                n_starts=n_starts, seed=seed, max_steps=max_steps)
        except Exception as exc:
            raise ServiceError(ERR_ENGINE,
                               f"convergence failed: {exc}") from None
        grid = report.grid
        return {"ok": True, "verb": "convergence", "session": entry.sid,
                "version": entry.version, "absolute": report.absolute,
                "runs": report.runs,
                "distinct_fixed_points": len(report.distinct_fixed_points),
                "max_steps": grid.max_steps,
                "mean_steps": grid.mean_steps,
                "engine": grid.resolution.chosen,
                "compute_ms": grid.elapsed_s * 1e3}

    # -- verb: stats -----------------------------------------------------

    def _handle_stats(self, req: Dict[str, Any]) -> Dict[str, Any]:
        lat = [s * 1e3 for s in self._latencies]
        hits = sum(e.hits for e in self._sessions.values())
        misses = sum(e.misses for e in self._sessions.values())
        total = hits + misses
        return {
            "ok": True, "verb": "stats", "id": req.get("id"),
            "v": SERVICE_VERSION,
            "uptime_s": (perf_counter() - self._started_at
                         if self._started_at else 0.0),
            "requests": self._requests,
            "errors": self._errors,
            "evictions": self._evictions,
            "shed": self._shed,
            "inflight": self._inflight,
            "max_inflight": self.max_inflight,
            "sessions": [
                {"session": e.sid, "version": e.version,
                 "cache_entries": len(e.cache), "hits": e.hits,
                 "misses": e.misses, "mutations": e.mutations,
                 "invalidated": e.invalidated, **e.params}
                for e in self._sessions.values()],
            "cache": {"hits": hits, "misses": misses,
                      "hit_ratio": (hits / total) if total else 0.0},
            "latency_ms": {"count": len(lat),
                           "p50": percentile(lat, 50.0),
                           "p99": percentile(lat, 99.0)},
        }


def _build_network(algebra_name: str, topology: str, n: int, seed: int):
    """Build (network, edge_factory) from the CLI registries.

    Imported lazily: the CLI's ``serve`` subcommand imports this
    package, so a module-level import would be circular.  Unlike
    :func:`repro.cli.build_network` this keeps the edge factory — the
    daemon needs it to materialise ``set_edge`` mutations from a seed.
    """
    from ..cli import ALGEBRAS, TOPOLOGIES
    from ..topologies.generators import erdos_renyi

    if algebra_name not in ALGEBRAS:
        raise ServiceError(
            ERR_BAD_REQUEST,
            f"unknown algebra {algebra_name!r}; choose from "
            f"{sorted(ALGEBRAS)}")
    alg, factory, _finite, _is_path = ALGEBRAS[algebra_name]()
    if topology == "random":
        network = erdos_renyi(alg, n, 0.4, factory, seed=seed)
    elif topology in TOPOLOGIES:
        network = TOPOLOGIES[topology](alg, n, factory, seed=seed)
    else:
        raise ServiceError(
            ERR_BAD_REQUEST,
            f"unknown topology {topology!r}; choose from "
            f"{sorted(TOPOLOGIES) + ['random']}")
    return network, factory


def serve(host: str = "127.0.0.1", port: int = 0, *, engine: str = "auto",
          max_sessions: int = 8, cache_entries: int = 512,
          max_inflight: int = 32, fault_plan=None,
          announce: bool = True) -> None:
    """Run a daemon until shutdown (the ``repro.cli serve`` backend)."""
    daemon = RoutingServiceDaemon(
        host, port, engine=engine, max_sessions=max_sessions,
        cache_entries=cache_entries, max_inflight=max_inflight,
        fault_plan=fault_plan, announce=announce)
    daemon.run()
