"""The routing-as-a-service daemon: warm sessions behind a TCP socket.

:class:`RoutingServiceDaemon` is a stdlib-``asyncio`` JSON-over-TCP
server.  It owns a registry of warm :class:`~repro.session.RoutingSession`
objects — engine negotiated once, adjacency shared with the incremental
engine's dirty-set tracking — so a client streams ``set_edge`` /
``remove_edge`` mutations and re-queries without ever paying a rebuild.
Each session carries a fixed-point/report cache keyed by

    (verb, adjacency.version, algebra, start seed,
     canonical schedule spec, SCHEDULE_SEED_VERSION, request knobs)

so a repeated query is an O(1) cache hit and a mutation — which bumps
``adjacency.version`` — invalidates exactly the entries computed
against the old topology (stale keys can never be looked up again; the
whole per-session cache is dropped eagerly so memory tracks the live
topology).

Concurrency model: the event loop only parses frames and consults
caches; fixed-point computes run in the default thread-pool executor
under a per-session :class:`asyncio.Lock`, so concurrent clients on one
warm session serialize safely (first one computes, the rest hit the
cache) while other sessions and connections stay responsive.

Durability (``state_dir=...`` / ``repro.cli serve --state-dir``): every
admitted ``load`` / ``set_edge`` / ``remove_edge`` is appended to a
checksummed write-ahead journal before its reply is sent, and the full
warm state (session params, ordered mutation logs, topology versions,
fixed-point cache bodies) is snapshotted periodically and on drain —
see :mod:`repro.service.persistence`.  On startup the daemon serves
``hello``/``health`` immediately in the ``restoring`` state, rebuilds
every session from the newest valid snapshot plus the journal tail
(torn tails are truncated exactly at the tear), and only then flips to
``ready`` — with the same topology versions and a warm cache, so the
first repeated query after a crash is already a hit.  SIGTERM and the
``shutdown`` verb trigger a **graceful drain**: new work is refused
with a typed ``draining`` error (+ ``retry_after_ms``), admitted
inflight requests finish under ``drain_deadline``, the journal is
flushed and a final snapshot written before the loop stops.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import logging
import random
import signal
import threading
import uuid
from collections import OrderedDict, deque
from time import perf_counter
from typing import Any, Dict, List, Optional, Tuple

from ..core.faults import FaultPlan, RECV_CLOSE, RECV_DROP
from ..core.schedule import RandomSchedule
from ..session import EngineSpec, RoutingSession
from .persistence import (
    ServicePersistence,
    cache_key_from_json,
    cache_key_to_json,
)
from .protocol import (
    ERR_BAD_REQUEST,
    ERR_BUSY,
    ERR_DRAINING,
    ERR_ENGINE,
    ERR_HELLO_REQUIRED,
    ERR_INTERNAL,
    ERR_MALFORMED,
    ERR_NO_SESSION,
    ERR_UNKNOWN_VERB,
    ERR_VERSION_SKEW,
    FATAL_CODES,
    MAX_LINE,
    SERVICE_VERSION,
    ServiceError,
    encode_frame,
    error_reply,
    percentile,
    schedule_cache_key,
    schedule_from_spec,
    start_state,
    state_digest,
    state_matrix,
)

__all__ = ["RoutingServiceDaemon", "serve"]

logger = logging.getLogger("repro.service")

_QUERY_VERBS = ("sigma", "delta", "convergence", "routes")


class _SessionEntry:
    """One warm session: network + RoutingSession + its report cache."""

    __slots__ = ("sid", "network", "session", "factory", "lock", "cache",
                 "hits", "misses", "invalidated", "mutations", "params",
                 "mutation_log", "state_cache")

    def __init__(self, sid: str, network, session: RoutingSession,
                 factory, params: Dict[str, Any]):
        self.sid = sid
        self.network = network
        self.session = session
        self.factory = factory
        self.params = params          # load parameters, echoed by stats
        self.lock = asyncio.Lock()    # serializes computes + mutations
        self.cache: "OrderedDict[Tuple, Dict[str, Any]]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.invalidated = 0
        self.mutations = 0
        #: ordered ``[verb, i, k, edge_seed]`` records — replaying them
        #: against a freshly built network reproduces the adjacency and
        #: its version counter bit for bit (snapshots persist this).
        self.mutation_log: List[List[Any]] = []
        #: small LRU of *fixed points* (RoutingState objects, never
        #: persisted — snapshots carry only JSON reply bodies) keyed by
        #: ``(version, start_seed, max_rounds)``; lets ``routes``
        #: queries for different rows/columns share one σ solve.
        self.state_cache: "OrderedDict[Tuple, Tuple]" = OrderedDict()

    @property
    def version(self) -> int:
        return self.network.adjacency.version

    def invalidate(self) -> int:
        """Drop every cached report (they were computed against the
        pre-mutation topology version); returns how many were dropped."""
        dropped = len(self.cache)
        self.cache.clear()
        self.state_cache.clear()
        self.invalidated += dropped
        return dropped


class RoutingServiceDaemon:
    """A long-lived JSON-over-TCP routing service (see module docs and
    ``docs/service.md`` for the protocol).

    Parameters
    ----------
    host, port:
        Bind address; ``port=0`` picks an ephemeral port (read it back
        from :attr:`port` after :meth:`start`).
    engine:
        Default :class:`~repro.session.EngineSpec` engine for sessions
        whose ``load`` does not name one (ladder rung or ``"auto"``).
    max_sessions:
        Warm-session registry bound; loading past it evicts (and
        closes) the least-recently-used session.
    cache_entries:
        Per-session report-cache bound (LRU).
    max_inflight:
        Backpressure bound: how many query computes may be admitted
        (waiting on a session lock or running in the executor) at once.
        Past it the daemon *sheds* with a typed ``busy`` error carrying
        a ``retry_after_ms`` hint instead of buffering unbounded work.
    fault_plan:
        Optional seeded :class:`~repro.core.faults.FaultPlan` (object,
        dict, or JSON string) injected into the connection stream for
        chaos testing: ``role="daemon"`` rules drop/delay/corrupt
        request lines and reply frames deterministically.  ``delay``
        faults stall only the targeted peer (the injector hands the
        delay back and the connection task awaits it; the event loop —
        and every other connection — keeps running).
    announce:
        Print the ``listening on host:port`` line on start — what the
        CLI and the CI smoke job parse.
    state_dir:
        Durable-state directory (write-ahead journal + snapshots, see
        :mod:`repro.service.persistence`).  ``None`` (default) keeps
        the daemon purely in-memory, exactly as before.
    snapshot_interval:
        Seconds between periodic snapshots (only written when the
        journal advanced since the last one).
    journal_sync_every:
        fsync the journal every this many admitted records (each record
        still reaches the OS before its reply — SIGKILL-safe; the batch
        bound is the machine-crash window).
    drain_deadline:
        Seconds a graceful drain waits for admitted inflight requests
        before giving up on them.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *,
                 engine: str = "auto", max_sessions: int = 8,
                 cache_entries: int = 512, max_inflight: int = 32,
                 fault_plan=None, announce: bool = False,
                 state_dir=None, snapshot_interval: float = 30.0,
                 journal_sync_every: int = 8,
                 drain_deadline: float = 10.0):
        EngineSpec(engine=engine)  # fail fast on a bad rung name
        self.host = host
        self.port = port
        self.default_engine = engine
        self.max_sessions = max_sessions
        self.cache_entries = cache_entries
        self.max_inflight = max(1, int(max_inflight))
        self._plan = (FaultPlan.parse(fault_plan)
                      if fault_plan is not None else None)
        self.announce = announce
        self.state_dir = state_dir
        self.snapshot_interval = max(0.05, float(snapshot_interval))
        self.journal_sync_every = max(1, int(journal_sync_every))
        self.drain_deadline = max(0.0, float(drain_deadline))
        self._persist: Optional[ServicePersistence] = None
        self._sessions: "OrderedDict[str, _SessionEntry]" = OrderedDict()
        self._server: Optional[asyncio.base_events.Server] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._ready = threading.Event()
        self._latencies: "deque[float]" = deque(maxlen=8192)
        self._requests = 0
        self._errors = 0
        self._evictions = 0
        self._inflight = 0
        self._shed = 0
        self._started_at: Optional[float] = None
        #: lifecycle state the ``health`` verb reports:
        #: ``restoring`` -> ``ready`` -> ``draining``
        self._state = "ready"
        self._restored: Optional[asyncio.Event] = None
        self._draining = False
        self._drain_task: Optional[asyncio.Task] = None
        self._snapshot_task: Optional[asyncio.Task] = None
        #: load/mutation/query requests admitted and not yet replied —
        #: what a graceful drain waits for (unlike ``_inflight``, which
        #: counts only query computes for backpressure).
        self._active_ops = 0
        self._sigterm_installed = False

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> None:
        """Bind, restore durable state (when configured), and start
        accepting connections.

        With a ``state_dir`` the socket opens *before* the restore runs
        — ``hello`` and ``health`` are served in the ``restoring``
        state (so orchestration can poll readiness) while every other
        verb waits for the restore to finish.
        """
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self._restored = asyncio.Event()
        self._draining = False
        self._state = "ready"
        if self.state_dir is not None:
            self._persist = ServicePersistence(
                self.state_dir, sync_every=self.journal_sync_every)
            self._state = "restoring"
        else:
            self._restored.set()
        try:
            # SIGTERM = graceful drain.  Only installable on the main
            # thread's loop; tests driving the daemon from a worker
            # thread simply go without (they use request_shutdown()).
            self._loop.add_signal_handler(signal.SIGTERM,
                                          self.request_shutdown)
            self._sigterm_installed = True
        except (NotImplementedError, RuntimeError, ValueError):
            self._sigterm_installed = False
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port, limit=MAX_LINE)
        self.port = self._server.sockets[0].getsockname()[1]
        self._started_at = perf_counter()
        self._ready.set()
        logger.info("service listening on %s:%d (engine=%s, "
                    "max_sessions=%d, state_dir=%s)", self.host, self.port,
                    self.default_engine, self.max_sessions, self.state_dir)
        if self.announce:
            print(f"repro routing service listening on "
                  f"{self.host}:{self.port}", flush=True)
        if self._persist is not None:
            await self._loop.run_in_executor(None, self._restore_state)
            if not self._draining:       # a drain can land mid-restore
                self._state = "ready"
                self._snapshot_task = self._loop.create_task(
                    self._snapshot_periodically())
            self._restored.set()
            logger.info("restore complete: %d session(s) warm, journal "
                        "seq=%d", len(self._sessions),
                        self._persist.journal_seq)

    async def serve_forever(self) -> None:
        """Block until :meth:`request_shutdown` (or the ``shutdown``
        verb) fires."""
        assert self._stop_event is not None, "start() first"
        await self._stop_event.wait()

    async def stop(self) -> None:
        """Stop accepting, close every warm session, release the port."""
        if self._snapshot_task is not None:
            self._snapshot_task.cancel()
            self._snapshot_task = None
        if self._sigterm_installed and self._loop is not None:
            try:
                self._loop.remove_signal_handler(signal.SIGTERM)
            except (NotImplementedError, RuntimeError, ValueError):
                pass
            self._sigterm_installed = False
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        loop = asyncio.get_running_loop()
        for entry in list(self._sessions.values()):
            await loop.run_in_executor(None, entry.session.close)
        self._sessions.clear()
        if self._persist is not None:
            self._persist.close()
            self._persist = None
        self._ready.clear()
        logger.info("service stopped (%d requests served)", self._requests)

    def request_shutdown(self) -> None:
        """Thread-safe shutdown trigger (used by the SIGTERM handler,
        the ``shutdown`` verb, and tests driving the daemon from a
        thread).  Routes through the graceful drain: admitted inflight
        requests finish (under :attr:`drain_deadline`), the journal is
        flushed and a final snapshot written before the loop stops.
        An idle daemon drains instantly."""
        loop = self._loop
        if loop is not None:
            loop.call_soon_threadsafe(self._begin_drain)

    def _begin_drain(self) -> None:
        """Enter the ``draining`` state (idempotent; loop thread only)."""
        if self._draining or self._loop is None:
            return
        self._draining = True
        self._state = "draining"
        logger.info("draining: %d admitted request(s) inflight, "
                    "deadline %.1fs", self._active_ops, self.drain_deadline)
        self._drain_task = self._loop.create_task(self._drain_and_stop())

    async def _drain_and_stop(self) -> None:
        """Finish inflight work, persist, then release serve_forever."""
        if self._restored is not None:
            # a drain arriving mid-restore must not write its final
            # snapshot concurrently with the restore's recovery
            # snapshot (both target the same sequence number)
            await self._restored.wait()
        deadline = perf_counter() + self.drain_deadline
        while self._active_ops > 0 and perf_counter() < deadline:
            await asyncio.sleep(0.02)
        if self._active_ops:
            logger.warning("drain deadline (%.1fs) expired with %d "
                           "request(s) still inflight; stopping anyway",
                           self.drain_deadline, self._active_ops)
        if self._persist is not None:
            try:
                await self._write_snapshot()
                self._persist.flush()
            except Exception:
                logger.exception("final drain snapshot failed; the "
                                 "journal still covers every admitted "
                                 "mutation")
        if self._stop_event is not None:
            self._stop_event.set()

    def wait_ready(self, timeout: float = 10.0) -> bool:
        """Block a *foreign* thread until the daemon is accepting."""
        return self._ready.wait(timeout)

    def run(self) -> None:
        """Synchronous entry point: start, serve until shutdown, stop."""
        asyncio.run(self._run())

    async def _run(self) -> None:
        await self.start()
        try:
            await self.serve_forever()
        finally:
            await self.stop()

    # -- durability: restore ---------------------------------------------

    def _restore_state(self) -> None:
        """Rebuild every warm session from disk (executor thread).

        Runs strictly before any verb other than ``hello``/``health``
        is admitted, so it owns ``_sessions`` and the persistence
        layer single-threaded.  Ends with a *recovery snapshot* (the
        restored state, journal fully covered) and an empty journal —
        every restart starts from a bounded replay.
        """
        assert self._persist is not None
        data = self._persist.restore()
        snapshot, tail = data["snapshot"], data["tail"]
        if snapshot is not None:
            for sess in snapshot["sessions"]:
                try:
                    self._restore_session(sess)
                except Exception:
                    logger.exception(
                        "could not restore session %s from the snapshot; "
                        "skipping it", sess.get("sid"))
        for rec in tail:
            try:
                self._apply_tail_record(rec)
            except Exception:
                logger.exception("could not replay journal record "
                                 "seq=%s; skipping it", rec.get("seq"))
        payload, seq = self._snapshot_payload()
        self._persist.snapshot(payload, journal_seq=seq)
        self._persist.truncate_journal()

    def _restore_session(self, sess: Dict[str, Any]) -> None:
        """One snapshot session -> a warm ``_SessionEntry``."""
        params = sess["params"]
        network, factory = _build_network(
            params["algebra"], params["topology"],
            int(params["n"]), int(params["seed"]))
        mutations = [list(m) for m in sess.get("mutations", [])]
        for verb, i, k, edge_seed in mutations:
            if verb == "set_edge":
                fn = factory(random.Random(int(edge_seed)), int(i), int(k))
                network.set_edge(int(i), int(k), fn)
            else:
                network.remove_edge(int(i), int(k))
        spec = EngineSpec(engine=params["engine"])
        session = RoutingSession(network, spec)
        entry = _SessionEntry(sess["sid"], network, session, factory,
                              dict(params))
        entry.mutation_log = mutations
        entry.mutations = len(mutations)
        recorded = sess.get("version")
        if recorded is not None and entry.version != recorded:
            # deterministic replay should make this unreachable; if it
            # ever happens the cache keys are untrustworthy — serve the
            # rebuilt topology with a cold cache instead of wrong hits.
            logger.warning(
                "restored session %s reached version %d, snapshot "
                "recorded %d; dropping its cache", entry.sid,
                entry.version, recorded)
        else:
            for key_json, body in sess.get("cache", []):
                entry.cache[cache_key_from_json(key_json)] = body
        self._admit_restored(entry)

    def _apply_tail_record(self, rec: Dict[str, Any]) -> None:
        """Replay one journal record beyond the snapshot."""
        verb = rec.get("verb")
        if verb == "load":
            if rec["sid"] not in self._sessions:
                self._restore_session({"sid": rec["sid"],
                                       "params": rec["params"]})
            return
        entry = self._sessions.get(rec.get("sid"))
        if entry is None:
            logger.warning("journal record seq=%s mutates unknown (or "
                           "evicted) session %s; skipping",
                           rec.get("seq"), rec.get("sid"))
            return
        i, k = int(rec["i"]), int(rec["k"])
        if verb == "set_edge":
            edge_seed = int(rec.get("edge_seed", 0))
            entry.network.set_edge(
                i, k, entry.factory(random.Random(edge_seed), i, k))
            entry.mutation_log.append(["set_edge", i, k, edge_seed])
        elif verb == "remove_edge":
            entry.network.remove_edge(i, k)
            entry.mutation_log.append(["remove_edge", i, k, None])
        else:
            logger.warning("journal record seq=%s has unknown verb %r; "
                           "skipping", rec.get("seq"), verb)
            return
        entry.invalidate()
        entry.mutations += 1
        recorded = rec.get("version")
        if recorded is not None and entry.version != recorded:
            logger.warning(
                "journal replay of seq=%s left session %s at version %d, "
                "record says %d", rec.get("seq"), entry.sid,
                entry.version, recorded)

    def _admit_restored(self, entry: _SessionEntry) -> None:
        """Insert a restored session under the normal LRU bound."""
        while len(self._sessions) >= self.max_sessions:
            victim_sid, victim = self._sessions.popitem(last=False)
            self._evictions += 1
            logger.warning("restore evicting LRU session %s to admit %s",
                           victim_sid, entry.sid)
            victim.session.close()
        self._sessions[entry.sid] = entry
        logger.info("restored session %s at version %d (%d cached "
                    "report(s), %d mutation(s))", entry.sid, entry.version,
                    len(entry.cache), entry.mutations)

    # -- durability: journal + snapshots ---------------------------------

    def _journal(self, record: Dict[str, Any]) -> None:
        """Append one admitted-request record (loop thread, before the
        reply is sent — an acknowledged request is always recoverable)."""
        if self._persist is not None:
            self._persist.append(record)

    def _snapshot_payload(self) -> Tuple[List[Dict[str, Any]], int]:
        """``(sessions, journal_seq)`` — built atomically with respect
        to appends (loop thread, or single-threaded during restore), so
        the seq provably covers everything in the payload."""
        sessions = []
        for entry in self._sessions.values():
            sessions.append({
                "sid": entry.sid,
                "params": dict(entry.params),
                "version": entry.version,
                "mutations": [list(m) for m in entry.mutation_log],
                "cache": [[cache_key_to_json(key), body]
                          for key, body in entry.cache.items()],
            })
        seq = self._persist.journal_seq if self._persist is not None else 0
        return sessions, seq

    async def _write_snapshot(self) -> None:
        """Snapshot now: payload captured on the loop, file I/O in the
        executor."""
        if self._persist is None:
            return
        payload, seq = self._snapshot_payload()
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(
            None, lambda: self._persist.snapshot(payload, journal_seq=seq))

    async def _snapshot_periodically(self) -> None:
        """Background cadence: snapshot whenever the journal advanced."""
        assert self._persist is not None
        try:
            while True:
                await asyncio.sleep(self.snapshot_interval)
                if self._persist is None:
                    return
                if self._persist.journal_lag > 0:
                    try:
                        await self._write_snapshot()
                    except Exception:
                        logger.exception("periodic snapshot failed; "
                                         "will retry next interval")
        except asyncio.CancelledError:
            pass

    # -- connection handling ---------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        peer = writer.get_extra_info("peername")
        hello_done = False
        injector = (self._plan.injector("daemon")
                    if self._plan is not None else None)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    # over-long line: the peer is not framing requests
                    await self._send(writer, error_reply(
                        ERR_MALFORMED,
                        f"request line exceeds {MAX_LINE} bytes"))
                    break
                except (ConnectionError, asyncio.IncompleteReadError):
                    break
                if not line:
                    break  # orderly EOF
                line = line.strip()
                if not line:
                    continue
                if injector is not None:
                    # _nowait + asyncio.sleep: a delay fault stalls only
                    # this peer's task, never the event loop (a blocking
                    # sleep here froze every other connection).
                    verdict, line, delay = injector.recv_frame_nowait(
                        0, line)
                    if delay > 0.0:
                        logger.warning("fault injection delaying peer=%s "
                                       "by %.0fms (other peers keep "
                                       "running)", peer, delay * 1e3)
                        await asyncio.sleep(delay)
                    if verdict == RECV_DROP:
                        logger.warning("fault injection dropped a request "
                                       "line from peer=%s", peer)
                        continue
                    if verdict == RECV_CLOSE:
                        logger.warning("fault injection severed the "
                                       "connection from peer=%s", peer)
                        break
                t0 = perf_counter()
                reply = await self._handle_frame(line, hello_done)
                verb = reply.get("verb")
                if reply.get("ok") and verb == "hello":
                    hello_done = True
                self._requests += 1
                elapsed = perf_counter() - t0
                self._latencies.append(elapsed)
                err = reply.get("error")
                if err:
                    self._errors += 1
                logger.info(
                    "peer=%s verb=%s ok=%s cached=%s err=%s ms=%.3f",
                    peer, verb, reply.get("ok"),
                    reply.get("cached", False),
                    err["code"] if err else None, elapsed * 1e3)
                severed = await self._send(writer, reply, injector)
                if severed:
                    logger.warning("fault injection severed the reply "
                                   "stream to peer=%s", peer)
                    break
                if err and err["code"] in FATAL_CODES:
                    break  # desynced or version-skewed peer: drop it
                if reply.get("ok") and verb == "shutdown":
                    self._begin_drain()
                    break
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _send(self, writer: asyncio.StreamWriter,
                    reply: Dict[str, Any], injector=None) -> bool:
        """Write one reply frame; True when a fault severed the stream
        (a ``drop`` fault suppresses the frame but keeps the connection:
        the client's read timeout is the recovery path)."""
        frame = encode_frame(reply)
        close_after = False
        if injector is not None:
            frame, close_after, delay = injector.send_frame_nowait(0, frame)
            if delay > 0.0:
                await asyncio.sleep(delay)  # stalls this peer only
        try:
            if frame is not None:
                writer.write(frame)
                await writer.drain()
        except (ConnectionError, OSError):
            pass  # peer vanished mid-reply; nothing left to tell it
        return close_after

    async def _handle_frame(self, line: bytes,
                            hello_done: bool) -> Dict[str, Any]:
        """Parse and dispatch one frame; always returns a reply dict."""
        try:
            req = json.loads(line.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return error_reply(ERR_MALFORMED, f"frame is not JSON: {exc}")
        if not isinstance(req, dict):
            return error_reply(
                ERR_MALFORMED,
                f"frame must be a JSON object, got {type(req).__name__}")
        verb = req.get("verb")
        req_id = req.get("id")
        if not hello_done:
            if verb != "hello":
                return error_reply(
                    ERR_HELLO_REQUIRED,
                    "first frame must be a versioned hello "
                    '({"verb": "hello", "v": %d})' % SERVICE_VERSION,
                    verb=verb, req_id=req_id)
            client_v = req.get("v")
            if client_v != SERVICE_VERSION:
                return error_reply(
                    ERR_VERSION_SKEW,
                    f"client speaks service protocol v{client_v!r}, "
                    f"server speaks v{SERVICE_VERSION}",
                    verb=verb, req_id=req_id,
                    server_version=SERVICE_VERSION)
            return {"ok": True, "verb": "hello", "id": req_id,
                    "v": SERVICE_VERSION,
                    "schedule_seed_version":
                        RandomSchedule.SCHEDULE_SEED_VERSION}
        try:
            if verb == "hello":
                # idempotent re-hello on an established connection
                return {"ok": True, "verb": "hello", "id": req_id,
                        "v": SERVICE_VERSION,
                        "schedule_seed_version":
                            RandomSchedule.SCHEDULE_SEED_VERSION}
            if verb == "health":
                # served in every lifecycle state, including restoring
                return self._handle_health(req)
            if self._restored is not None and not self._restored.is_set():
                # restoring: park everything else until the warm state
                # is back (clients just see a slower first reply)
                await self._restored.wait()
            if verb in ("load", "set_edge", "remove_edge") or \
                    verb in _QUERY_VERBS:
                if self._draining:
                    return error_reply(
                        ERR_DRAINING,
                        "daemon is draining (shutdown in progress); "
                        "this instance is not admitting new work",
                        verb=verb, req_id=req_id,
                        retry_after_ms=self._retry_hint_ms())
                self._active_ops += 1
                try:
                    if verb == "load":
                        return await self._handle_load(req)
                    if verb in ("set_edge", "remove_edge"):
                        return await self._handle_mutation(req, verb)
                    return await self._handle_query(req, verb)
                finally:
                    self._active_ops -= 1
            if verb == "stats":
                return self._handle_stats(req)
            if verb == "snapshot":
                return await self._handle_snapshot(req)
            if verb == "shutdown":
                return {"ok": True, "verb": "shutdown", "id": req_id}
            return error_reply(
                ERR_UNKNOWN_VERB,
                f"unknown verb {verb!r}; the vocabulary is "
                "('hello', 'load', 'set_edge', 'remove_edge', 'sigma', "
                "'delta', 'convergence', 'routes', 'stats', 'health', "
                "'snapshot', 'shutdown')",
                verb=verb, req_id=req_id)
        except ServiceError as exc:
            return error_reply(exc.code, exc.message, verb=verb,
                               req_id=req_id, **exc.extra)
        except Exception:  # a bug must not kill the server — or leak
            cid = uuid.uuid4().hex[:12]
            logger.exception(
                "unexpected failure handling verb=%r (correlation id %s)",
                verb, cid)
            return error_reply(
                ERR_INTERNAL,
                f"internal server error (correlation id {cid}); "
                "details are in the server log",
                verb=verb, req_id=req_id, correlation_id=cid)

    # -- verb: load ------------------------------------------------------

    async def _handle_load(self, req: Dict[str, Any]) -> Dict[str, Any]:
        algebra = req.get("algebra")
        topology = req.get("topology", "random")
        try:
            n = int(req["n"])
            seed = int(req.get("seed", 0))
        except (KeyError, TypeError, ValueError):
            raise ServiceError(
                ERR_BAD_REQUEST,
                "load requires integer 'n' (and optional integer 'seed')")
        engine = req.get("engine", self.default_engine)
        if not isinstance(algebra, str):
            raise ServiceError(ERR_BAD_REQUEST,
                              "load requires an 'algebra' name")
        if not 2 <= n <= 4096:
            raise ServiceError(ERR_BAD_REQUEST,
                              f"n={n} outside the served range [2, 4096]")
        sid = hashlib.sha256(
            f"{algebra}|{topology}|{n}|{seed}|{engine}".encode()
        ).hexdigest()[:12]
        entry = self._sessions.get(sid)
        if entry is not None:
            self._sessions.move_to_end(sid)
            return self._load_reply(entry, req.get("id"), reused=True)
        loop = asyncio.get_running_loop()
        network, factory = await loop.run_in_executor(
            None, _build_network, algebra, topology, n, seed)
        entry = self._sessions.get(sid)
        if entry is not None:  # a concurrent identical load won the race
            self._sessions.move_to_end(sid)
            return self._load_reply(entry, req.get("id"), reused=True)
        try:
            spec = EngineSpec(engine=engine)
        except ValueError as exc:
            raise ServiceError(ERR_BAD_REQUEST, str(exc)) from None
        try:
            session = RoutingSession(network, spec)
        except Exception as exc:
            raise ServiceError(
                ERR_ENGINE,
                f"session construction failed: {exc}") from None
        entry = _SessionEntry(sid, network, session, factory, {
            "algebra": algebra, "topology": topology, "n": n,
            "seed": seed, "engine": engine})
        while len(self._sessions) >= self.max_sessions:
            victim_sid, victim = self._sessions.popitem(last=False)
            self._evictions += 1
            logger.warning("evicting LRU session %s (%s) to admit %s",
                           victim_sid, victim.params, sid)
            await loop.run_in_executor(None, victim.session.close)
        self._sessions[sid] = entry
        self._journal({"verb": "load", "sid": sid, "params": entry.params})
        logger.info("loaded session %s: %s", sid, entry.params)
        return self._load_reply(entry, req.get("id"), reused=False)

    @staticmethod
    def _load_reply(entry: _SessionEntry, req_id: Any,
                    reused: bool) -> Dict[str, Any]:
        return {"ok": True, "verb": "load", "id": req_id,
                "session": entry.sid, "reused": reused,
                "n": entry.network.n,
                "algebra": entry.params["algebra"],
                "topology": entry.params["topology"],
                "engine": entry.params["engine"],
                "version": entry.version,
                "edges": sum(1 for _ in entry.network.present_edges())}

    # -- verbs: set_edge / remove_edge -----------------------------------

    def _entry(self, req: Dict[str, Any]) -> _SessionEntry:
        sid = req.get("session")
        entry = self._sessions.get(sid)
        if entry is None:
            raise ServiceError(
                ERR_NO_SESSION,
                f"no warm session {sid!r} (expired, evicted, or never "
                "loaded); issue a 'load' first")
        self._sessions.move_to_end(sid)
        return entry

    async def _handle_mutation(self, req: Dict[str, Any],
                               verb: str) -> Dict[str, Any]:
        entry = self._entry(req)
        n = entry.network.n
        try:
            i, k = int(req["i"]), int(req["k"])
        except (KeyError, TypeError, ValueError):
            raise ServiceError(ERR_BAD_REQUEST,
                              f"{verb} requires integer 'i' and 'k'")
        if not (0 <= i < n and 0 <= k < n):
            raise ServiceError(
                ERR_BAD_REQUEST,
                f"edge ({i}, {k}) outside the 0..{n - 1} node range")
        async with entry.lock:
            if verb == "set_edge":
                edge_seed = int(req.get("edge_seed", 0))
                fn = entry.factory(random.Random(edge_seed), i, k)
                entry.network.set_edge(i, k, fn)
                entry.mutation_log.append(["set_edge", i, k, edge_seed])
            else:
                entry.network.remove_edge(i, k)
                entry.mutation_log.append(["remove_edge", i, k, None])
                edge_seed = None
            dropped = entry.invalidate()
            entry.mutations += 1
            version = entry.version
            # journalled under the lock (journal order == application
            # order per session) and before the reply is sent: an
            # acknowledged mutation is always recoverable.
            record = {"verb": verb, "sid": entry.sid, "i": i, "k": k,
                      "version": version}
            if verb == "set_edge":
                record["edge_seed"] = edge_seed
            self._journal(record)
        logger.info("session %s %s(%d, %d) -> version=%d, "
                    "%d cache entries invalidated",
                    entry.sid, verb, i, k, version, dropped)
        return {"ok": True, "verb": verb, "id": req.get("id"),
                "session": entry.sid, "i": i, "k": k,
                "version": version, "invalidated": dropped}

    # -- verbs: sigma / delta / convergence ------------------------------

    async def _handle_query(self, req: Dict[str, Any],
                            verb: str) -> Dict[str, Any]:
        entry = self._entry(req)
        req_id = req.get("id")
        start_seed = req.get("start_seed")
        if start_seed is not None:
            start_seed = int(start_seed)
        include_state = bool(req.get("include_state", False))
        sched_spec: Optional[Dict[str, Any]] = None
        if verb == "sigma":
            max_rounds = int(req.get("max_rounds", 10_000))
            knobs: Tuple = (max_rounds,)
        elif verb == "routes":
            max_rounds = int(req.get("max_rounds", 10_000))
            node = req.get("node")
            dest = req.get("dest")
            if (node is None) == (dest is None):
                raise ServiceError(
                    ERR_BAD_REQUEST,
                    "routes takes exactly one of 'node' (that node's "
                    "routes to every destination) or 'dest' (every "
                    "node's route to that destination)")
            axis = int(node) if node is not None else int(dest)
            if not 0 <= axis < entry.network.n:
                raise ServiceError(
                    ERR_BAD_REQUEST,
                    f"{'node' if node is not None else 'dest'}={axis} out "
                    f"of range for this session's n={entry.network.n}")
            node = axis if node is not None else None
            dest = axis if node is None else None
            knobs = (max_rounds, node, dest)
        elif verb == "delta":
            sched_spec = req.get("schedule", {"kind": "round-robin"})
            schedule_from_spec(sched_spec, entry.network.n)  # validate now
            max_steps = int(req.get("max_steps", 2_000))
            knobs = (max_steps,)
        else:  # convergence
            n_starts = int(req.get("n_starts", 3))
            start_seed = int(req.get("seed", 0))  # grid's sampling seed
            max_steps = int(req.get("max_steps", 2_000))
            knobs = (n_starts, max_steps)
        # the fixed-point cache key from the module docs: topology
        # version + algebra + start + schedule (canonical) + the seed
        # semantics version, plus the verb's own knobs.
        key = (verb, entry.version, entry.params["algebra"], start_seed,
               schedule_cache_key(sched_spec) if sched_spec else None,
               RandomSchedule.SCHEDULE_SEED_VERSION, include_state, knobs)
        # backpressure: a query is "in flight" from admission (it may
        # queue on the session lock) until its reply is built; past the
        # bound the daemon sheds with a typed busy + retry hint instead
        # of buffering unbounded work behind a slow compute.
        if self._inflight >= self.max_inflight:
            self._shed += 1
            raise ServiceError(
                ERR_BUSY,
                f"daemon is at its max_inflight={self.max_inflight} "
                "query bound; retry after the hint",
                retry_after_ms=self._retry_hint_ms())
        self._inflight += 1
        try:
            async with entry.lock:
                cached = entry.cache.get(key)
                if cached is not None:
                    entry.hits += 1
                    entry.cache.move_to_end(key)
                    return dict(cached, id=req_id, cached=True)
                entry.misses += 1
                loop = asyncio.get_running_loop()
                if verb == "sigma":
                    body = await loop.run_in_executor(
                        None, self._compute_sigma, entry, start_seed,
                        max_rounds, include_state)
                elif verb == "routes":
                    body = await loop.run_in_executor(
                        None, self._compute_routes, entry, start_seed,
                        max_rounds, node, dest)
                elif verb == "delta":
                    body = await loop.run_in_executor(
                        None, self._compute_delta, entry, sched_spec,
                        start_seed, max_steps, include_state)
                else:
                    body = await loop.run_in_executor(
                        None, self._compute_convergence, entry, start_seed,
                        n_starts, max_steps)
                entry.cache[key] = body
                while len(entry.cache) > self.cache_entries:
                    entry.cache.popitem(last=False)
        finally:
            self._inflight -= 1
        return dict(body, id=req_id, cached=False)

    def _retry_hint_ms(self) -> float:
        """The ``busy`` reply's backoff hint: the recent median request
        latency, clamped to a sane band."""
        lat = [s * 1e3 for s in self._latencies]
        hint = percentile(lat, 50.0) if lat else 50.0
        return round(min(max(hint, 25.0), 2000.0), 3)

    def _compute_sigma(self, entry: _SessionEntry,
                       start_seed: Optional[int], max_rounds: int,
                       include_state: bool) -> Dict[str, Any]:
        start = start_state(entry.network, start_seed)
        try:
            report = entry.session.sigma(start, max_rounds=max_rounds)
        except Exception as exc:
            raise ServiceError(ERR_ENGINE,
                               f"sigma failed: {exc}") from None
        body = {"ok": True, "verb": "sigma", "session": entry.sid,
                "version": entry.version,
                "converged": report.converged, "rounds": report.rounds,
                "engine": report.resolution.chosen,
                "compute_ms": report.elapsed_s * 1e3,
                "digest": state_digest(report.state)}
        if include_state:
            body["state"] = state_matrix(report.state)
        return body

    def _compute_routes(self, entry: _SessionEntry,
                        start_seed: Optional[int], max_rounds: int,
                        node: Optional[int],
                        dest: Optional[int]) -> Dict[str, Any]:
        """One row/column of the fixed point as route strings — O(n)
        on the wire against ``include_state``'s O(n²), with the solved
        state shared across slices through the entry's state cache."""
        skey = (entry.version, start_seed, max_rounds)
        cached = entry.state_cache.get(skey)
        if cached is not None:
            state, converged, rounds = cached
            entry.state_cache.move_to_end(skey)
        else:
            start = start_state(entry.network, start_seed)
            try:
                report = entry.session.sigma(start, max_rounds=max_rounds)
            except Exception as exc:
                raise ServiceError(ERR_ENGINE,
                                   f"routes failed: {exc}") from None
            state, converged, rounds = \
                report.state, report.converged, report.rounds
            entry.state_cache[skey] = (state, converged, rounds)
            while len(entry.state_cache) > 4:
                entry.state_cache.popitem(last=False)
        routes = state.row(node) if node is not None else state.column(dest)
        return {"ok": True, "verb": "routes", "session": entry.sid,
                "version": entry.version, "converged": converged,
                "rounds": rounds, "node": node, "dest": dest,
                "routes": [str(r) for r in routes],
                "digest": state_digest(state)}

    def _compute_delta(self, entry: _SessionEntry,
                       sched_spec: Dict[str, Any],
                       start_seed: Optional[int], max_steps: int,
                       include_state: bool) -> Dict[str, Any]:
        schedule = schedule_from_spec(sched_spec, entry.network.n)
        start = start_state(entry.network, start_seed)
        try:
            report = entry.session.delta(schedule, start,
                                         max_steps=max_steps)
        except Exception as exc:
            raise ServiceError(ERR_ENGINE,
                               f"delta failed: {exc}") from None
        body = {"ok": True, "verb": "delta", "session": entry.sid,
                "version": entry.version,
                "converged": report.converged, "steps": report.steps,
                "converged_at": report.converged_at,
                "engine": report.resolution.chosen,
                "compute_ms": report.elapsed_s * 1e3,
                "schedule_seed_version":
                    RandomSchedule.SCHEDULE_SEED_VERSION,
                "digest": state_digest(report.state)}
        if include_state:
            body["state"] = state_matrix(report.state)
        return body

    def _compute_convergence(self, entry: _SessionEntry, seed: int,
                             n_starts: int,
                             max_steps: int) -> Dict[str, Any]:
        try:
            report = entry.session.converges(
                n_starts=n_starts, seed=seed, max_steps=max_steps)
        except Exception as exc:
            raise ServiceError(ERR_ENGINE,
                               f"convergence failed: {exc}") from None
        grid = report.grid
        return {"ok": True, "verb": "convergence", "session": entry.sid,
                "version": entry.version, "absolute": report.absolute,
                "runs": report.runs,
                "distinct_fixed_points": len(report.distinct_fixed_points),
                "max_steps": grid.max_steps,
                "mean_steps": grid.mean_steps,
                "engine": grid.resolution.chosen,
                "compute_ms": grid.elapsed_s * 1e3}

    # -- verbs: health / snapshot ----------------------------------------

    def _handle_health(self, req: Dict[str, Any]) -> Dict[str, Any]:
        """Readiness/liveness: lifecycle state + durability lag.

        Served in *every* state (including ``restoring``, before other
        verbs are admitted) so orchestration and load balancers can
        gate on ``state == "ready"``.
        """
        reply = {
            "ok": True, "verb": "health", "id": req.get("id"),
            "state": self._state,
            "durable": self._persist is not None,
            "sessions": len(self._sessions),
            "inflight": self._active_ops,
        }
        if self._persist is not None:
            age = self._persist.last_snapshot_age_s
            reply.update(
                journal_seq=self._persist.journal_seq,
                snapshot_seq=self._persist.snapshot_seq,
                journal_lag=self._persist.journal_lag,
                last_snapshot_age_s=(round(age, 3)
                                     if age is not None else None))
        return reply

    async def _handle_snapshot(self, req: Dict[str, Any]) -> Dict[str, Any]:
        """Force a snapshot now (admin verb; tests and the CI
        restart-recovery job use it to pin the warm cache to disk at a
        deterministic point instead of waiting out the cadence)."""
        if self._persist is None:
            raise ServiceError(
                ERR_BAD_REQUEST,
                "daemon has no durable state (start it with --state-dir "
                "to enable snapshots)")
        await self._write_snapshot()
        return {"ok": True, "verb": "snapshot", "id": req.get("id"),
                "journal_seq": self._persist.snapshot_seq,
                "sessions": len(self._sessions)}

    # -- verb: stats -----------------------------------------------------

    def _handle_stats(self, req: Dict[str, Any]) -> Dict[str, Any]:
        lat = [s * 1e3 for s in self._latencies]
        hits = sum(e.hits for e in self._sessions.values())
        misses = sum(e.misses for e in self._sessions.values())
        total = hits + misses
        return {
            "ok": True, "verb": "stats", "id": req.get("id"),
            "v": SERVICE_VERSION,
            "state": self._state,
            "uptime_s": (perf_counter() - self._started_at
                         if self._started_at else 0.0),
            "requests": self._requests,
            "errors": self._errors,
            "evictions": self._evictions,
            "shed": self._shed,
            "inflight": self._inflight,
            "max_inflight": self.max_inflight,
            "sessions": [
                {"session": e.sid, "version": e.version,
                 "cache_entries": len(e.cache), "hits": e.hits,
                 "misses": e.misses, "mutations": e.mutations,
                 "invalidated": e.invalidated, **e.params}
                for e in self._sessions.values()],
            "cache": {"hits": hits, "misses": misses,
                      "hit_ratio": (hits / total) if total else 0.0},
            "latency_ms": {"count": len(lat),
                           "p50": percentile(lat, 50.0),
                           "p99": percentile(lat, 99.0)},
        }


def _build_network(algebra_name: str, topology: str, n: int, seed: int):
    """Build (network, edge_factory) from the CLI registries.

    Imported lazily: the CLI's ``serve`` subcommand imports this
    package, so a module-level import would be circular.  Unlike
    :func:`repro.cli.build_network` this keeps the edge factory — the
    daemon needs it to materialise ``set_edge`` mutations from a seed.
    """
    from ..cli import ALGEBRAS, TOPOLOGIES
    from ..topologies.generators import erdos_renyi

    if algebra_name not in ALGEBRAS:
        raise ServiceError(
            ERR_BAD_REQUEST,
            f"unknown algebra {algebra_name!r}; choose from "
            f"{sorted(ALGEBRAS)}")
    alg, factory, _finite, _is_path = ALGEBRAS[algebra_name]()
    if topology.startswith("corpus:"):
        # a committed scenario-corpus fixture; its node count is fixed
        # by the file, so the load's n must agree (clients compute
        # indices against it)
        from ..scenarios.corpus import load_corpus_topology
        try:
            topo = load_corpus_topology(topology[len("corpus:"):])
        except ValueError as exc:
            raise ServiceError(ERR_BAD_REQUEST, str(exc)) from None
        if n != topo.n:
            raise ServiceError(
                ERR_BAD_REQUEST,
                f"corpus topology {topo.name!r} has n={topo.n} nodes; "
                f"load it with n={topo.n} (got n={n})")
        network = topo.build(alg, factory, seed=seed)
    elif topology == "random":
        network = erdos_renyi(alg, n, 0.4, factory, seed=seed)
    elif topology in TOPOLOGIES:
        network = TOPOLOGIES[topology](alg, n, factory, seed=seed)
    else:
        raise ServiceError(
            ERR_BAD_REQUEST,
            f"unknown topology {topology!r}; choose from "
            f"{sorted(TOPOLOGIES) + ['random', 'corpus:<name>']}")
    return network, factory


def serve(host: str = "127.0.0.1", port: int = 0, *, engine: str = "auto",
          max_sessions: int = 8, cache_entries: int = 512,
          max_inflight: int = 32, fault_plan=None,
          announce: bool = True, state_dir=None,
          snapshot_interval: float = 30.0, journal_sync_every: int = 8,
          drain_deadline: float = 10.0) -> None:
    """Run a daemon until shutdown (the ``repro.cli serve`` backend)."""
    daemon = RoutingServiceDaemon(
        host, port, engine=engine, max_sessions=max_sessions,
        cache_entries=cache_entries, max_inflight=max_inflight,
        fault_plan=fault_plan, announce=announce, state_dir=state_dir,
        snapshot_interval=snapshot_interval,
        journal_sync_every=journal_sync_every,
        drain_deadline=drain_deadline)
    daemon.run()
