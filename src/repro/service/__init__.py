"""Routing-as-a-service: a long-lived asyncio daemon over warm sessions.

The batch entry points (:class:`~repro.session.RoutingSession`, the CLI
subcommands) recompute from scratch on every invocation.  Production
serving is the opposite shape: a long-lived process owns *warm*
sessions — engines built, tables encoded, schedules compiled — and
clients stream small requests at it.  This package provides

* :class:`~repro.service.daemon.RoutingServiceDaemon` — a stdlib
  ``asyncio`` JSON-over-TCP server (newline-delimited frames, versioned
  hello, typed error replies — the :doc:`docs/wire.md <wire>` failure
  discipline re-applied at the request layer) owning a registry of warm
  :class:`~repro.session.RoutingSession` objects keyed by
  ``(algebra, adjacency.version)``;
* a **fixed-point / report cache** keyed by ``(topology version,
  algebra, start, schedule seed, SCHEDULE_SEED_VERSION)`` so repeated
  queries are O(1) cache hits, invalidated precisely when a mutation
  bumps the topology version;
* :class:`~repro.service.client.ServiceClient` /
  :class:`~repro.service.client.AsyncServiceClient` — thin request
  helpers (the async one drives ``benchmarks/load_test.py``);
* ``python -m repro.cli serve`` — the operator entry point.

Protocol reference: :doc:`docs/service.md <service>`.
"""

from .protocol import (
    ERR_BAD_REQUEST,
    ERR_BUSY,
    ERR_DRAINING,
    ERR_ENGINE,
    ERR_HELLO_REQUIRED,
    ERR_INTERNAL,
    ERR_MALFORMED,
    ERR_NO_SESSION,
    ERR_SERVER,
    ERR_UNKNOWN_VERB,
    ERR_VERSION_SKEW,
    SERVICE_VERSION,
    ServiceError,
    schedule_from_spec,
    state_digest,
    state_matrix,
)
from .daemon import RoutingServiceDaemon, serve
from .client import AsyncServiceClient, ServiceClient

__all__ = [
    "SERVICE_VERSION",
    "ServiceError",
    "ERR_BAD_REQUEST",
    "ERR_BUSY",
    "ERR_DRAINING",
    "ERR_ENGINE",
    "ERR_INTERNAL",
    "ERR_HELLO_REQUIRED",
    "ERR_MALFORMED",
    "ERR_NO_SESSION",
    "ERR_SERVER",
    "ERR_UNKNOWN_VERB",
    "ERR_VERSION_SKEW",
    "RoutingServiceDaemon",
    "serve",
    "ServiceClient",
    "AsyncServiceClient",
    "schedule_from_spec",
    "state_digest",
    "state_matrix",
]
