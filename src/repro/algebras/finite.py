"""Synthetic finite algebras for property-based testing.

Theorem 7 quantifies over *every* finite strictly increasing algebra,
so the test suite should not content itself with hand-picked examples.
This module builds arbitrary finite total-order algebras:

* the carrier is ``{0, 1, ..., m}`` with ``0`` the trivial route, ``m``
  the invalid route and smaller-is-preferred;
* ⊕ is ``min`` (associative/commutative/selective by construction);
* edge functions are lookup tables ``g : S → S`` with ``g(m) = m``.

A table with ``g(x) > x`` for all ``x < m`` is strictly increasing; a
table with ``g(x) ≥ x`` merely increasing; arbitrary tables are neither.
Hypothesis strategies over these tables give the property-based tests a
dense sample of the whole algebra space, including the boundary cases
(functions that jump straight to invalid = route filters, plateaus that
break strictness, identity rows that break increase).
"""

from __future__ import annotations

from typing import Iterator, List, Sequence

from ..core.algebra import EdgeFunction, Route
from .base import KeyOrderedAlgebra


class FiniteLevelAlgebra(KeyOrderedAlgebra):
    """The chain algebra ``({0..m}, min, tables, 0, m)``."""

    is_finite = True

    def __init__(self, levels: int = 8):
        """``levels`` is m: the carrier has m + 1 elements (0..m)."""
        if levels < 1:
            raise ValueError("need at least levels=1 (trivial plus invalid)")
        self.levels = levels
        self.name = f"finite-chain<{levels}>"

    @property
    def trivial(self) -> Route:
        return 0

    @property
    def invalid(self) -> Route:
        return self.levels

    def preference_key(self, route: Route):
        return route

    def routes(self) -> Iterator[Route]:
        return iter(range(self.levels + 1))

    # -- edge-function constructors -------------------------------------

    def table_edge(self, table: Sequence[int]) -> "TableEdge":
        """An explicit lookup-table edge function."""
        return TableEdge(list(table), self.levels)

    def step_edge(self, delta: int = 1) -> "TableEdge":
        """``f(x) = min(x + delta, m)`` as a table."""
        return self.table_edge(
            [min(x + delta, self.levels) for x in range(self.levels + 1)])

    def filter_edge(self) -> "TableEdge":
        """The constant-invalid table: a route filter."""
        return self.table_edge([self.levels] * (self.levels + 1))

    def random_strict_edge(self, rng) -> "TableEdge":
        """Random table with ``g(x) > x`` — strictly increasing."""
        table = [rng.randint(x + 1, self.levels) for x in range(self.levels)]
        table.append(self.levels)
        return self.table_edge(table)

    def random_increasing_edge(self, rng) -> "TableEdge":
        """Random table with ``g(x) ≥ x`` — increasing, maybe not strictly."""
        table = [rng.randint(x, self.levels) for x in range(self.levels)]
        table.append(self.levels)
        return self.table_edge(table)

    def random_arbitrary_edge(self, rng) -> "TableEdge":
        """Random table with only ``g(m) = m`` imposed — usually broken."""
        table = [rng.randint(0, self.levels) for _ in range(self.levels)]
        table.append(self.levels)
        return self.table_edge(table)

    def sample_edge_function(self, rng) -> "TableEdge":
        return self.random_strict_edge(rng)


class TableEdge(EdgeFunction):
    """A lookup-table edge function over the chain carrier."""

    def __init__(self, table: List[int], levels: int):
        if len(table) != levels + 1:
            raise ValueError(f"table must have {levels + 1} entries")
        if table[levels] != levels:
            raise ValueError("table must fix the invalid route (g(m) = m)")
        if any(not (0 <= v <= levels) for v in table):
            raise ValueError("table values must stay inside the carrier")
        self.table = table
        self.levels = levels

    def __call__(self, route: Route) -> Route:
        return self.table[route]

    def encoded_table(self, encoding):
        """FiniteEncoding fast path: the chain carrier encodes to itself,
        so this table *is* the vectorized engine's lookup table."""
        if not encoding.identity or encoding.size != self.levels + 1:
            return None
        return self.table

    @property
    def is_strictly_increasing(self) -> bool:
        return all(self.table[x] > x for x in range(self.levels))

    @property
    def is_increasing(self) -> bool:
        return all(self.table[x] >= x for x in range(self.levels))

    def __repr__(self) -> str:
        return f"TableEdge({self.table})"
