"""Most reliable paths: ``([0,1], max, F_×, 0, 1)`` — row 4 of Table 2.

A route is the probability that a path delivers a packet; ⊕ prefers the
*larger* probability; an edge multiplies by its own reliability
(``f_s(a) = s · a`` with ``s ∈ [0, 1]``).  The trivial route is 1
(delivery to yourself is certain) and the invalid route is 0.

Increasing always (``s·a ≤ a``); strictly increasing when every edge
reliability is < 1 — then ``s·a < a`` for every valid ``a ≠ 0``.
The carrier is infinite (a real interval), so the Theorem 7 finiteness
hypothesis again fails; the quantised variant below restores it.
"""

from __future__ import annotations

from ..core.algebra import EdgeFunction, Route
from .base import KeyOrderedAlgebra


class ReliabilityEdge(EdgeFunction):
    """``f_s(a) = s · a`` for ``s ∈ [0, 1]``."""

    def __init__(self, reliability: float):
        if not (0.0 <= reliability <= 1.0):
            raise ValueError("reliability must lie in [0, 1]")
        self.reliability = reliability

    def __call__(self, route: Route) -> Route:
        return self.reliability * route

    def __repr__(self) -> str:
        return f"ReliabilityEdge({self.reliability})"


class MostReliableAlgebra(KeyOrderedAlgebra):
    """The max-times algebra over [0, 1]."""

    name = "most-reliable-paths"
    is_finite = False

    def __init__(self, sample_grid: int = 100):
        #: sampled routes/reliabilities are multiples of 1/sample_grid,
        #: keeping float arithmetic exact enough for equality testing
        self.sample_grid = sample_grid

    @property
    def trivial(self) -> Route:
        return 1.0

    @property
    def invalid(self) -> Route:
        return 0.0

    def preference_key(self, route: Route):
        return -route

    def sample_route(self, rng) -> Route:
        roll = rng.random()
        if roll < 0.1:
            return 0.0
        if roll < 0.2:
            return 1.0
        return rng.randint(1, self.sample_grid - 1) / self.sample_grid

    def sample_edge_function(self, rng) -> ReliabilityEdge:
        # strictly below 1 so the strictly-increasing law holds
        return ReliabilityEdge(rng.randint(1, self.sample_grid - 1)
                               / self.sample_grid)

    def edge(self, reliability: float) -> ReliabilityEdge:
        return ReliabilityEdge(reliability)


class QuantisedReliabilityAlgebra(MostReliableAlgebra):
    """Most-reliable-paths over the finite grid {0, 1/q, ..., 1}.

    Multiplication is rounded *down* to the grid, which preserves the
    increasing direction (rounding down makes routes worse, never
    better) and keeps the carrier finite, so Theorem 7 applies whenever
    all reliabilities are < 1.
    """

    name = "most-reliable-quantised"
    is_finite = True

    def __init__(self, quantum: int = 10):
        super().__init__(sample_grid=quantum)
        self.quantum = quantum

    def routes(self):
        for k in range(self.quantum + 1):
            yield k / self.quantum

    def edge(self, reliability: float) -> "QuantisedReliabilityEdge":
        return QuantisedReliabilityEdge(reliability, self.quantum)

    def sample_edge_function(self, rng) -> "QuantisedReliabilityEdge":
        return QuantisedReliabilityEdge(
            rng.randint(1, self.quantum - 1) / self.quantum, self.quantum)

    def sample_route(self, rng) -> Route:
        return rng.randint(0, self.quantum) / self.quantum


class QuantisedReliabilityEdge(EdgeFunction):
    """``f_s(a) = floor(s·a·q)/q`` — multiply then round down to the grid."""

    def __init__(self, reliability: float, quantum: int):
        if not (0.0 <= reliability <= 1.0):
            raise ValueError("reliability must lie in [0, 1]")
        self.reliability = reliability
        self.quantum = quantum

    def __call__(self, route: Route) -> Route:
        import math

        return math.floor(self.reliability * route * self.quantum) / self.quantum

    def __repr__(self) -> str:
        return f"QuantisedReliabilityEdge({self.reliability}, q={self.quantum})"
