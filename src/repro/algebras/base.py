"""Shared infrastructure for concrete algebras.

Most practical routing algebras are *min-by-total-order* algebras: ⊕
returns whichever argument has the smaller *preference key* under some
injective key function.  Such a ⊕ is automatically associative,
commutative and selective — the three structural laws of Table 1 — so
concrete algebras built on :class:`KeyOrderedAlgebra` get them for free
(and the verification suite re-checks them anyway, because trusting a
base class is exactly what the paper warns against).

The key function must be *injective on distinct routes*: if two distinct
routes compared equal, ⊕ would have to pick one arbitrarily, silently
breaking commutativity (``a ⊕ b = a`` but ``b ⊕ a = b``).  Algebras with
natural ties (e.g. BGPLite routes differing only in communities) must
fold a canonical tiebreak into the key.

Finite encodings
----------------

A *finite* key-ordered algebra admits a canonical **int encoding** of
its carrier: sort the ``m + 1`` routes by preference and number them
``0..m``.  Because the derived order is total and the key injective,

* code ``0`` is the trivial route 0̄ and code ``m`` the invalid route ∞̄,
* ``⊕`` on routes is exactly ``min`` on codes, and
* every edge function collapses to a dense ``(m + 1)``-entry lookup
  table ``table[c] = encode(f(decode(c)))``.

That is the contract the vectorized engine
(:mod:`repro.core.vectorized`) builds on: σ becomes a generalised
min-plus matrix product over small ints.  :class:`AlgebraEncoding`
holds one such encoding; :meth:`KeyOrderedAlgebra.finite_encoding`
builds and caches it.  Edge functions may implement an
``encoded_table(encoding)`` hook to supply their table directly (see
:class:`~repro.algebras.finite.TableEdge`, whose table *is* the
encoding).
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

from ..core.algebra import (
    EdgeFunction,
    Route,
    RoutingAlgebra,
    UnsupportedAlgebraError,
)


class AlgebraEncoding:
    """A preference-ordered int encoding of a finite algebra's carrier.

    ``codes[c]`` is the route encoded as ``c``; smaller codes are more
    preferred, so ``choice`` on routes is ``min`` on codes, ``encode``
    of the trivial route is :attr:`trivial_code` ``= 0`` and of the
    invalid route :attr:`invalid_code` ``= size - 1``.
    """

    __slots__ = ("algebra", "codes", "index", "size", "identity")

    def __init__(self, algebra: RoutingAlgebra, codes: Sequence[Route]):
        self.algebra = algebra
        self.codes: List[Route] = list(codes)
        self.size = len(self.codes)
        self.index = {route: c for c, route in enumerate(self.codes)}
        if len(self.index) != self.size:
            raise UnsupportedAlgebraError(
                f"{algebra.name}: carrier enumeration repeats a route; "
                "cannot build an injective encoding")
        # int-carrier algebras (hop count, finite chains) encode to
        # themselves; engines use this to skip per-route dict lookups.
        self.identity = all(
            isinstance(route, int) and route == c
            for c, route in enumerate(self.codes))

    trivial_code = 0

    @property
    def invalid_code(self) -> int:
        return self.size - 1

    def encode(self, route: Route) -> int:
        try:
            return self.index[route]
        except (KeyError, TypeError):
            raise UnsupportedAlgebraError(
                f"{self.algebra.name}: route {route!r} is outside the "
                f"finite carrier ({self.size} routes)") from None

    def decode(self, code: int) -> Route:
        return self.codes[code]

    def edge_table(self, fn: EdgeFunction) -> List[int]:
        """Dense lookup table ``table[c] = encode(fn(decode(c)))``.

        Honours the ``encoded_table(encoding)`` fast-path hook when the
        edge function provides one (returning ``None`` from the hook
        falls back to the generic pointwise build).
        """
        hook = getattr(fn, "encoded_table", None)
        if hook is not None:
            table = hook(self)
            if table is not None:
                if len(table) != self.size:
                    raise UnsupportedAlgebraError(
                        f"{fn!r}: encoded_table returned {len(table)} "
                        f"entries for a {self.size}-route carrier")
                return list(table)
        return [self.encode(fn(route)) for route in self.codes]

    def __repr__(self) -> str:
        return (f"AlgebraEncoding({self.algebra.name}, size={self.size}, "
                f"identity={self.identity})")


class KeyOrderedAlgebra(RoutingAlgebra):
    """A routing algebra whose ⊕ is min-by-``preference_key``.

    Subclasses implement :meth:`preference_key` returning a totally
    ordered, injective key (smaller = more preferred).  The trivial
    route must map to the minimum key and the invalid route to the
    maximum, which yields "0̄ annihilates ⊕" and "∞̄ is the identity of
    ⊕" directly.
    """

    def preference_key(self, route: Route) -> Any:
        """Total-order key; smaller keys are more preferred."""
        raise NotImplementedError

    def choice(self, a: Route, b: Route) -> Route:
        """⊕: return the argument with the smaller preference key."""
        return a if self.preference_key(a) <= self.preference_key(b) else b

    # The derived order coincides with key comparison; overriding these
    # avoids recomputing choice() twice per comparison.

    def leq(self, a: Route, b: Route) -> bool:
        return self.preference_key(a) <= self.preference_key(b)

    def lt(self, a: Route, b: Route) -> bool:
        return self.preference_key(a) < self.preference_key(b)

    def sort_routes(self, routes):
        """Sort by key directly (equivalent to the ⊕-selection sort)."""
        return sorted(routes, key=self.preference_key)

    # ------------------------------------------------------------------
    # FiniteEncoding protocol
    # ------------------------------------------------------------------

    def finite_encoding(self) -> AlgebraEncoding:
        """The canonical int encoding of a finite carrier (cached).

        Raises :class:`~repro.core.algebra.UnsupportedAlgebraError` when
        the carrier is infinite, when enumeration is unavailable, or
        when the preference key fails to totally order it (a tie would
        make ``min`` on codes disagree with ⊕ on routes).
        """
        cached: Optional[AlgebraEncoding] = getattr(
            self, "_finite_encoding", None)
        if cached is not None:
            return cached
        if not self.is_finite:
            raise UnsupportedAlgebraError(
                f"{self.name}: carrier is not finite; no int encoding exists")
        try:
            universe = list(self.routes())
        except NotImplementedError:
            raise UnsupportedAlgebraError(
                f"{self.name}: is_finite is set but routes() does not "
                "enumerate the carrier") from None
        try:
            universe.sort(key=self.preference_key)
            keys = [self.preference_key(r) for r in universe]
            strictly_sorted = all(a < b for a, b in zip(keys, keys[1:]))
        except TypeError:
            # incomparable keys must surface as a capability gap, so the
            # engine selectors fall back instead of crashing
            raise UnsupportedAlgebraError(
                f"{self.name}: preference keys are not mutually "
                "comparable; the carrier cannot be totally ordered into "
                "codes") from None
        if not strictly_sorted:
            raise UnsupportedAlgebraError(
                f"{self.name}: preference keys are not injective over "
                "the carrier; ⊕ on routes would disagree with min on "
                "codes")
        encoding = AlgebraEncoding(self, universe)
        if not self.equal(encoding.decode(0), self.trivial) or \
                not self.equal(encoding.decode(encoding.size - 1),
                               self.invalid):
            raise UnsupportedAlgebraError(
                f"{self.name}: carrier enumeration does not place 0̄ first "
                "and ∞̄ last under the preference order")
        self._finite_encoding = encoding
        return encoding
