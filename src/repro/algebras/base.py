"""Shared infrastructure for concrete algebras.

Most practical routing algebras are *min-by-total-order* algebras: ⊕
returns whichever argument has the smaller *preference key* under some
injective key function.  Such a ⊕ is automatically associative,
commutative and selective — the three structural laws of Table 1 — so
concrete algebras built on :class:`KeyOrderedAlgebra` get them for free
(and the verification suite re-checks them anyway, because trusting a
base class is exactly what the paper warns against).

The key function must be *injective on distinct routes*: if two distinct
routes compared equal, ⊕ would have to pick one arbitrarily, silently
breaking commutativity (``a ⊕ b = a`` but ``b ⊕ a = b``).  Algebras with
natural ties (e.g. BGPLite routes differing only in communities) must
fold a canonical tiebreak into the key.
"""

from __future__ import annotations

from typing import Any

from ..core.algebra import Route, RoutingAlgebra


class KeyOrderedAlgebra(RoutingAlgebra):
    """A routing algebra whose ⊕ is min-by-``preference_key``.

    Subclasses implement :meth:`preference_key` returning a totally
    ordered, injective key (smaller = more preferred).  The trivial
    route must map to the minimum key and the invalid route to the
    maximum, which yields "0̄ annihilates ⊕" and "∞̄ is the identity of
    ⊕" directly.
    """

    def preference_key(self, route: Route) -> Any:
        """Total-order key; smaller keys are more preferred."""
        raise NotImplementedError

    def choice(self, a: Route, b: Route) -> Route:
        """⊕: return the argument with the smaller preference key."""
        return a if self.preference_key(a) <= self.preference_key(b) else b

    # The derived order coincides with key comparison; overriding these
    # avoids recomputing choice() twice per comparison.

    def leq(self, a: Route, b: Route) -> bool:
        return self.preference_key(a) <= self.preference_key(b)

    def lt(self, a: Route, b: Route) -> bool:
        return self.preference_key(a) < self.preference_key(b)

    def sort_routes(self, routes):
        """Sort by key directly (equivalent to the ⊕-selection sort)."""
        return sorted(routes, key=self.preference_key)
