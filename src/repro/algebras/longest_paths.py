"""Longest paths: ``(ℕ∞, max, F₊, 0, ∞)`` — row 2 of Table 2.

⊕ prefers the numerically *larger* route; edge functions add weight.
The trivial route is ∞ and the invalid route is 0 (note the swap
relative to shortest paths — Table 2 lists them in the order
(∞̄, 0̄) = (0, ∞)).

This algebra satisfies all five *required* laws of Table 1 (the edge
functions explicitly fix the invalid route 0, i.e.
``f_w(0) = 0``) but it is **not increasing**: extending a route makes
it numerically larger and therefore *more* preferred.  It is the
classic non-convergent problem (simple longest path is NP-hard), kept
here as a negative control: the Table 1 bench shows its ✗ in the
increasing column, and tests confirm σ can diverge on cyclic
topologies.
"""

from __future__ import annotations

import math

from ..core.algebra import EdgeFunction, Route
from .base import KeyOrderedAlgebra

INF = math.inf


class GainEdge(EdgeFunction):
    """``f_w(a) = w + a`` for valid ``a``; fixes the invalid route 0.

    The special case is required by the "∞̄ is a fixed point of F" law —
    here ∞̄ is the number 0, which plain addition would not preserve.
    """

    def __init__(self, weight: float):
        if weight < 0:
            raise ValueError("gain weights must be non-negative")
        self.weight = weight

    def __call__(self, route: Route) -> Route:
        if route == 0:
            return 0
        return self.weight + route

    def __repr__(self) -> str:
        return f"GainEdge({self.weight})"


class LongestPathsAlgebra(KeyOrderedAlgebra):
    """The max-plus algebra over ℕ∞ (a deliberately broken algebra)."""

    name = "longest-paths"
    is_finite = False

    def __init__(self, max_sample_weight: int = 10):
        self.max_sample_weight = max_sample_weight

    @property
    def trivial(self) -> Route:
        return INF

    @property
    def invalid(self) -> Route:
        return 0

    def preference_key(self, route: Route):
        return -route

    def sample_route(self, rng) -> Route:
        roll = rng.random()
        if roll < 0.1:
            return 0
        if roll < 0.2:
            return INF
        return rng.randint(1, 10 * self.max_sample_weight)

    def sample_edge_function(self, rng) -> GainEdge:
        return GainEdge(rng.randint(1, self.max_sample_weight))

    def edge(self, weight: float) -> GainEdge:
        return GainEdge(weight)
