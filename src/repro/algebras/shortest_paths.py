"""Shortest paths: ``(ℕ∞, min, F₊, 0, ∞)`` — row 1 of Table 2.

Routes are non-negative numbers (hop-weighted distances); ∞̄ is the
float infinity; ⊕ is numeric ``min``; edge functions add a fixed weight.

Properties (verified in tests, summarised in the Table 1 bench):

* all five required laws hold;
* *increasing* iff all edge weights are ≥ 0;
* *strictly increasing* iff all edge weights are ≥ 1 — but the carrier
  is **infinite**, so Theorem 7 does *not* apply: plain shortest-path
  distance-vector suffers count-to-infinity from stale states (the
  paper's Section 5 opening).  The path-vector lift
  ``AddPaths(ShortestPathsAlgebra())`` restores absolute convergence
  via Theorem 11.
"""

from __future__ import annotations

import math

from ..core.algebra import EdgeFunction, Route
from .base import KeyOrderedAlgebra

INF = math.inf


class AdditiveEdge(EdgeFunction):
    """``f_w(a) = w + a`` (with ``f(∞) = ∞`` automatically)."""

    def __init__(self, weight: float):
        if weight < 0:
            raise ValueError("additive edge weights must be non-negative")
        self.weight = weight

    def __call__(self, route: Route) -> Route:
        return self.weight + route

    def __repr__(self) -> str:
        return f"AdditiveEdge({self.weight})"


class ShortestPathsAlgebra(KeyOrderedAlgebra):
    """The min-plus algebra over ℕ∞."""

    name = "shortest-paths"
    is_finite = False

    def __init__(self, max_sample_weight: int = 10):
        self.max_sample_weight = max_sample_weight

    @property
    def trivial(self) -> Route:
        return 0

    @property
    def invalid(self) -> Route:
        return INF

    def preference_key(self, route: Route):
        return route

    def equal(self, a: Route, b: Route) -> bool:
        return a == b

    def sample_route(self, rng) -> Route:
        # include the distinguished routes with non-trivial probability
        roll = rng.random()
        if roll < 0.1:
            return INF
        if roll < 0.2:
            return 0
        return rng.randint(1, 10 * self.max_sample_weight)

    def sample_edge_function(self, rng) -> AdditiveEdge:
        return AdditiveEdge(rng.randint(1, self.max_sample_weight))

    def edge(self, weight: float) -> AdditiveEdge:
        """Convenience factory: the edge function adding ``weight``."""
        return AdditiveEdge(weight)
