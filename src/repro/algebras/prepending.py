"""AS-path prepending — the Section 7 extension, implemented.

The paper closes Section 7 with: *"AS path prepending would be possible
to add with minor tweaks to the path function and the policy language."*
This module makes those tweaks.

Prepending pads the announced path with copies of the announcing node
to make a route look longer (and hence less attractive) — a ubiquitous
BGP traffic-engineering knob.  The wrinkle is that a padded path is not
a *simple* path, so it cannot be the ``path()`` of a path algebra
directly.  The paper's prescription: keep the padded path in the route,
and let the ``path`` projection *strip the padding* — P1–P3 then hold
for the stripped path, and all of Theorem 11 goes through untouched.

Concretely a route is ``PaddedRoute(lp, communities, raw_path)`` where
``raw_path`` may repeat the head node (only the head — padding older
hops is impossible in BGP and would break the simple-path projection).
Choice compares the *raw* length (so prepending does make a route less
preferred — its entire purpose), then lp, communities etc. as in
BGPLite.  The new policy ``Prepend(k)`` pads the head ``k`` extra
times; it composes freely with the whole Section 7 policy AST.

Increasing is preserved: extension still strictly lengthens the raw
path and no policy can shorten it or lower ``lp``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..core.algebra import EdgeFunction, PathAlgebra, Route
from ..core.paths import BOTTOM, can_extend
from .bgplite import INVALID, Policy


def strip_padding(raw_path: Tuple[int, ...]) -> Tuple[int, ...]:
    """Collapse consecutive duplicate nodes: the ``path`` tweak.

    ``(3, 3, 3, 2, 0) → (3, 2, 0)``.  The projection of a padded path
    is always a simple path when the unpadded path was.
    """
    out = []
    for node in raw_path:
        if not out or out[-1] != node:
            out.append(node)
    return tuple(out)


def padding_of(raw_path: Tuple[int, ...]) -> int:
    """Total number of padded (redundant) entries."""
    return len(raw_path) - len(strip_padding(raw_path))


@dataclass(frozen=True)
class PaddedRoute:
    """A BGPLite route whose path may carry head padding."""

    lp: int
    communities: frozenset
    raw_path: Tuple[int, ...]

    @property
    def path(self) -> Tuple[int, ...]:
        return strip_padding(self.raw_path)

    def __repr__(self) -> str:
        comms = "{" + ",".join(map(str, sorted(self.communities))) + "}"
        return (f"padded(lp={self.lp}, comms={comms}, "
                f"raw={self.raw_path})")


def padded(lp: int = 0, communities=(), raw_path=()) -> PaddedRoute:
    return PaddedRoute(lp, frozenset(communities), tuple(raw_path))


@dataclass(frozen=True)
class Prepend(Policy):
    """Pad the head of the path ``times`` extra times (times ≥ 0).

    Applied after the edge extension, so the head is the importing
    node — matching BGP, where you prepend *your own* AS number.
    """

    times: int

    def __post_init__(self):
        if self.times < 0:
            raise ValueError("cannot prepend a negative number of times")

    def _apply_valid(self, route):
        if not route.raw_path:
            return route          # nothing to pad on the empty path
        head = route.raw_path[0]
        return PaddedRoute(route.lp, route.communities,
                           (head,) * self.times + route.raw_path)


class PrependingBGPAlgebra(PathAlgebra):
    """BGPLite + prepending: routes are :class:`PaddedRoute`.

    The decision procedure inserts the *raw* path length where BGPLite
    used the simple length — prepending therefore deters traffic, which
    is its purpose — and the ``path()`` projection strips padding so the
    path-algebra laws (and Theorem 11) apply verbatim.
    """

    name = "bgp-lite+prepending"
    is_finite = False

    def __init__(self, n_nodes: int = 8, community_universe: int = 8,
                 max_sample_lp: int = 8):
        self.n_nodes = n_nodes
        self.community_universe = community_universe
        self.max_sample_lp = max_sample_lp

    @property
    def trivial(self) -> Route:
        return padded(0, (), ())

    @property
    def invalid(self) -> Route:
        return INVALID

    def _key(self, r: PaddedRoute):
        return (r.lp, len(r.raw_path), r.raw_path,
                tuple(sorted(r.communities)))

    def choice(self, x: Route, y: Route) -> Route:
        if x is INVALID:
            return y
        if y is INVALID:
            return x
        return x if self._key(x) <= self._key(y) else y

    def path(self, route: Route):
        """The paper's tweak: project the *stripped* path."""
        if route is INVALID:
            return BOTTOM
        return route.path

    def edge(self, i: int, j: int, policy: Policy) -> "PrependingEdge":
        return PrependingEdge(i, j, policy)

    def sample_route(self, rng) -> Route:
        if rng.random() < 0.1:
            return INVALID
        lp = rng.randint(0, self.max_sample_lp)
        comms = frozenset(c for c in range(self.community_universe)
                          if rng.random() < 0.2)
        k = rng.randint(0, min(3, self.n_nodes - 1))
        path = tuple(rng.sample(range(self.n_nodes), k + 1)) if k else ()
        if path and rng.random() < 0.4:
            path = (path[0],) * rng.randint(1, 2) + path
        return PaddedRoute(lp, comms, path)

    def sample_edge_function(self, rng) -> "PrependingEdge":
        from .bgplite import Compose, random_policy

        i, j = rng.sample(range(self.n_nodes), 2)
        policy = random_policy(rng, self.community_universe, self.n_nodes)
        if rng.random() < 0.5:
            policy = Compose(policy, Prepend(rng.randint(0, 3)))
        return PrependingEdge(i, j, policy)


class PrependingEdge(EdgeFunction):
    """P3 guards on the *stripped* path, extension on the raw path."""

    def __init__(self, i: int, j: int, policy: Policy):
        self.i = i
        self.j = j
        self.policy = policy

    def __call__(self, route: Route) -> Route:
        if route is INVALID:
            return INVALID
        simple = route.path
        if not can_extend(self.i, self.j, simple):
            return INVALID
        extended = PaddedRoute(route.lp, route.communities,
                               (self.i,) + route.raw_path
                               if route.raw_path else (self.i, self.j))
        result = self.policy.apply(extended)
        return result

    def __repr__(self) -> str:
        return f"PrependingEdge(({self.i},{self.j}), {self.policy!r})"
