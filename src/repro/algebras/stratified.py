"""Stratified shortest paths (Griffin 2012), referenced in Section 7.

Routes live in strata: a route is ``(level, distance)`` under
lexicographic preference (lower level wins; within a level, shorter
distance wins).  Edge policies either

* stay in the level and add distance (``AddDistance w`` with w ≥ 1),
* jump to a strictly higher level, resetting the distance
  (``RaiseLevel k`` with k ≥ 1), or
* filter the route (``Filtered``).

All three are strictly increasing, so the algebra is safe; the paper
notes its Section 7 BGPLite algebra is a *superset* of this one — a
claim :mod:`tests.algebras.test_stratified` makes precise by exhibiting
an embedding of stratified edge policies into BGPLite policies
(level ↦ local-pref, distance ↦ path length).
"""

from __future__ import annotations

import math
from typing import Iterator, Tuple

from ..core.algebra import EdgeFunction, Route
from .base import KeyOrderedAlgebra

INF = math.inf

#: The invalid route: worse than every stratum.
STRAT_INVALID = (INF, INF)


class StratifiedAlgebra(KeyOrderedAlgebra):
    """``((level, distance), lex-min, {AddDistance, RaiseLevel, Filtered})``."""

    name = "stratified-shortest-paths"
    is_finite = False

    def __init__(self, max_sample_level: int = 4, max_sample_distance: int = 50):
        self.max_sample_level = max_sample_level
        self.max_sample_distance = max_sample_distance

    @property
    def trivial(self) -> Route:
        return (0, 0)

    @property
    def invalid(self) -> Route:
        return STRAT_INVALID

    def preference_key(self, route: Route):
        return route  # tuples compare lexicographically

    def sample_route(self, rng) -> Route:
        roll = rng.random()
        if roll < 0.1:
            return STRAT_INVALID
        if roll < 0.2:
            return (0, 0)
        return (rng.randint(0, self.max_sample_level),
                rng.randint(0, self.max_sample_distance))

    def sample_edge_function(self, rng) -> EdgeFunction:
        roll = rng.random()
        if roll < 0.1:
            return Filtered()
        if roll < 0.3:
            return RaiseLevel(rng.randint(1, 2))
        if roll < 0.55:
            return LevelMapEdge.random(rng, self.max_sample_level)
        return AddDistance(rng.randint(1, 10))

    # convenience factories
    def add(self, w: int) -> "AddDistance":
        return AddDistance(w)

    def raise_level(self, k: int = 1) -> "RaiseLevel":
        return RaiseLevel(k)

    def filtered(self) -> "Filtered":
        return Filtered()

    def level_map(self, mapping, add: int = 1) -> "LevelMapEdge":
        return LevelMapEdge(mapping, add)


class CarrierClampEdge(EdgeFunction):
    """Clamp an unbounded stratified policy into a finite carrier.

    Routes that the inner policy pushes past ``max_level`` /
    ``max_distance`` become ∞̄ — the same truncation-to-unreachable RIP
    applies at 16 hops.  The clamp maps a route strictly above the
    carrier to the top element, so it preserves the (strictly)
    increasing laws of the inner policy.
    """

    def __init__(self, inner: EdgeFunction, max_level: int,
                 max_distance: int):
        self.inner = inner
        self.max_level = max_level
        self.max_distance = max_distance

    def __call__(self, route: Route) -> Route:
        out = self.inner(route)
        if out == STRAT_INVALID:
            return STRAT_INVALID
        level, dist = out
        if level > self.max_level or dist > self.max_distance:
            return STRAT_INVALID
        return out

    def __repr__(self) -> str:
        return (f"CarrierClampEdge({self.inner!r}, "
                f"≤({self.max_level},{self.max_distance}))")


class BoundedStratifiedAlgebra(StratifiedAlgebra):
    """The finite restriction of stratified shortest paths.

    Carrier: ``{(l, d) : 0 ≤ l ≤ L, 0 ≤ d ≤ D} ∪ {∞̄}`` with the same
    lexicographic preference.  Every edge policy is wrapped in
    :class:`CarrierClampEdge`, so routes leaving the box become ∞̄ —
    which keeps the algebra strictly increasing *and* finite, hence
    Theorem 7 applies and the vectorized engine can int-encode it
    (FiniteEncoding protocol, ``(L+1)·(D+1)+1`` codes).
    """

    is_finite = True

    def __init__(self, max_level: int = 3, max_distance: int = 12):
        if max_level < 0 or max_distance < 0:
            raise ValueError("carrier bounds must be non-negative")
        super().__init__(max_sample_level=max_level,
                         max_sample_distance=max_distance)
        self.max_level = max_level
        self.max_distance = max_distance
        self.name = f"stratified<{max_level},{max_distance}>"

    def routes(self) -> Iterator[Route]:
        for level in range(self.max_level + 1):
            for dist in range(self.max_distance + 1):
                yield (level, dist)
        yield STRAT_INVALID

    def clamp(self, fn: EdgeFunction) -> CarrierClampEdge:
        return CarrierClampEdge(fn, self.max_level, self.max_distance)

    # every factory yields carrier-closed policies

    def add(self, w: int) -> EdgeFunction:
        return self.clamp(super().add(w))

    def raise_level(self, k: int = 1) -> EdgeFunction:
        return self.clamp(super().raise_level(k))

    def level_map(self, mapping, add: int = 1) -> EdgeFunction:
        return self.clamp(super().level_map(mapping, add))

    def sample_edge_function(self, rng) -> EdgeFunction:
        return self.clamp(super().sample_edge_function(rng))

    def sample_route(self, rng) -> Route:
        # the sampling bounds coincide with the carrier, so the parent
        # sampler already stays inside it
        return super().sample_route(rng)


class AddDistance(EdgeFunction):
    """Stay in the stratum, add ``w ≥ 1`` to the distance."""

    def __init__(self, weight: int):
        if weight < 1:
            raise ValueError("intra-level weights must be >= 1")
        self.weight = weight

    def __call__(self, route: Route) -> Route:
        if route == STRAT_INVALID:
            return STRAT_INVALID
        level, dist = route
        return (level, dist + self.weight)

    def __repr__(self) -> str:
        return f"AddDistance(+{self.weight})"


class RaiseLevel(EdgeFunction):
    """Jump ``k ≥ 1`` strata up and restart the distance at 0.

    Strictly increasing because the level component strictly grows;
    resetting the distance is what makes the algebra interestingly
    *non-distributive* (a better route can land in a worse stratum
    after crossing the edge).
    """

    def __init__(self, k: int = 1):
        if k < 1:
            raise ValueError("level jumps must be >= 1")
        self.k = k

    def __call__(self, route: Route) -> Route:
        if route == STRAT_INVALID:
            return STRAT_INVALID
        level, _dist = route
        return (level + self.k, 0)

    def __repr__(self) -> str:
        return f"RaiseLevel(+{self.k})"


class Filtered(EdgeFunction):
    """The constant-invalid policy: route filtering."""

    def __call__(self, route: Route) -> Route:
        return STRAT_INVALID

    def __repr__(self) -> str:
        return "Filtered()"


class LevelMapEdge(EdgeFunction):
    """A per-level policy: remap the stratum, per the Griffin 2012 model.

    ``mapping[l]`` gives the new level for a route currently at level
    ``l`` (levels not in the mapping jump by 1).  Staying in the level
    adds ``add ≥ 1`` to the distance; moving up resets the distance.

    The increasing law requires ``mapping[l] ≥ l`` (validated), but the
    map need not be *monotone across levels* — e.g.
    ``{0: 2, 1: 1}`` sends level-0 routes above level-1 routes,
    reversing preferences across the edge.  Such non-monotone policies
    are exactly what makes the stratified algebra **non-distributive**
    (policy-rich) while remaining strictly increasing (safe).
    """

    def __init__(self, mapping, add: int = 1, default_jump: int = 1):
        if add < 1:
            raise ValueError("intra-level distance increments must be >= 1")
        if default_jump < 1:
            raise ValueError("the default level jump must be >= 1")
        for level, target in mapping.items():
            if target < level:
                raise ValueError(
                    f"level map lowers level {level} -> {target}; that would "
                    "break the increasing law")
        self.mapping = dict(mapping)
        self.add = add
        self.default_jump = default_jump

    def __call__(self, route: Route) -> Route:
        if route == STRAT_INVALID:
            return STRAT_INVALID
        level, dist = route
        target = self.mapping.get(level, level + self.default_jump)
        if target == level:
            return (level, dist + self.add)
        return (target, 0)

    @classmethod
    def random(cls, rng, max_level: int) -> "LevelMapEdge":
        mapping = {}
        for level in range(max_level + 1):
            roll = rng.random()
            if roll < 0.4:
                mapping[level] = level                       # stay
            elif roll < 0.8:
                mapping[level] = level + rng.randint(1, 2)   # climb
            else:
                mapping[level] = max_level + 5               # near-filter
        return cls(mapping, add=rng.randint(1, 5))

    def __repr__(self) -> str:
        return f"LevelMapEdge({self.mapping}, +{self.add})"
