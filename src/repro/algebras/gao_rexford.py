"""Gao–Rexford economics as a strictly increasing path algebra (Sobrinho's
embedding, discussed in Sections 1 and 1.1 of the paper).

Gao & Rexford showed that BGP converges if every AS follows the
customer/peer/provider rules:

* **preference**: customer-learned routes over peer-learned over
  provider-learned;
* **export**: routes learned from a customer (or originated) may be
  exported to everyone; routes learned from a peer or provider are
  exported *only to customers* ("valley-free" routing).

Sobrinho observed — and the paper repeats — that these conditions embed
into a *strictly increasing* algebra, so our Theorem 11 machinery
subsumes them while also delivering the uniqueness (point 2) that Gao &
Rexford's own theorem lacks.

The embedding: a route is ``(tag, path)`` where ``tag`` records how the
*current holder* learned it (0 = from a customer / originated,
1 = from a peer, 2 = from a provider; lower is preferred), choice is
lexicographic ``(tag, path length, path)``, and the edge function for
``i`` importing from ``j`` with relationship ``rel`` (what ``j`` is to
``i``):

* applies the export filter *from j's point of view* — ``j`` only
  releases the route to ``i`` if ``i`` is ``j``'s customer or the route
  is customer-learned/originated (tag 0);
* applies P3's loop/source guards;
* re-tags the route with how ``i`` learned it (``rel``).

Export rules guarantee the tag never *decreases* along any admissible
extension while the path always lengthens — strictly increasing, hence
absolutely convergent by Theorem 11.  Tests verify the increasing law
by exhaustive sampling, and the GR bench compares convergence on
realistic customer-provider hierarchies.
"""

from __future__ import annotations

from enum import IntEnum
from typing import Optional, Tuple

from ..core.algebra import EdgeFunction, PathAlgebra, Route
from ..core.paths import BOTTOM, can_extend, extend, length


class Rel(IntEnum):
    """Relationship of the *exporting* neighbour to the importer.

    ``CUSTOMER`` means "I import this route from my customer" — the
    most preferred case (customers pay).  The numeric values double as
    preference tags.
    """

    CUSTOMER = 0
    PEER = 1
    PROVIDER = 2


#: The invalid route sentinel.
GR_INVALID = ("invalid",)

GRRoute = Tuple[int, Tuple[int, ...]]
"""A valid route: ``(tag, path)`` with tag ∈ {0, 1, 2}."""


class GaoRexfordAlgebra(PathAlgebra):
    """The customer/peer/provider algebra ``(tag, path)``-lex."""

    name = "gao-rexford"
    is_finite = False

    def __init__(self, n_nodes: int = 8):
        self.n_nodes = n_nodes

    @property
    def trivial(self) -> Route:
        return (0, ())

    @property
    def invalid(self) -> Route:
        return GR_INVALID

    def _key(self, r: GRRoute):
        tag, path = r
        return (tag, len(path), path)

    def choice(self, x: Route, y: Route) -> Route:
        if x == GR_INVALID:
            return y
        if y == GR_INVALID:
            return x
        return x if self._key(x) <= self._key(y) else y

    def path(self, route: Route):
        if route == GR_INVALID:
            return BOTTOM
        return route[1]

    def edge(self, i: int, j: int, rel: Rel) -> "GaoRexfordEdge":
        """The edge ``i ← j`` where ``j`` is ``i``'s ``rel``."""
        return GaoRexfordEdge(i, j, rel)

    def sample_route(self, rng) -> Route:
        if rng.random() < 0.1:
            return GR_INVALID
        tag = rng.randrange(3)
        k = rng.randint(0, min(3, self.n_nodes - 1))
        path = tuple(rng.sample(range(self.n_nodes), k + 1)) if k else ()
        return (tag, path)

    def sample_edge_function(self, rng) -> "GaoRexfordEdge":
        i, j = rng.sample(range(self.n_nodes), 2)
        return GaoRexfordEdge(i, j, Rel(rng.randrange(3)))


class GaoRexfordEdge(EdgeFunction):
    """Import processing for node ``i`` learning from ``j`` (j is i's rel)."""

    def __init__(self, i: int, j: int, rel: Rel):
        self.i = i
        self.j = j
        self.rel = rel

    def __call__(self, route: Route) -> Route:
        if route == GR_INVALID:
            return GR_INVALID
        tag, path = route
        # Export filter, evaluated from j's side: i's role for j is the
        # inverse relationship.  j exports to its own customers freely;
        # to peers and providers it exports only customer/origin routes.
        exporting_to_customer = self.rel is Rel.PROVIDER  # j is i's provider ⇒ i is j's customer
        if not exporting_to_customer and tag != Rel.CUSTOMER:
            return GR_INVALID
        if not can_extend(self.i, self.j, path):
            return GR_INVALID
        return (int(self.rel), extend(self.i, self.j, path))

    def __repr__(self) -> str:
        return f"GaoRexfordEdge(({self.i}<-{self.j}), {self.rel.name})"
