"""Hop count with a ceiling — the RIP model (Sections 4.2 and 5).

RIP artificially limits the hop count to 16, with 16 meaning
"unreachable".  That truncation makes the carrier *finite*:

    S = {0, 1, ..., B}      (B = 16 for RIP; ∞̄ = B, 0̄ = 0)
    a ⊕ b = min(a, b)
    f_w(a) = min(a + w, B)   for  w ≥ 1

The algebra is finite and strictly increasing
(``a < B ⇒ a < min(a + w, B)``), so **Theorem 7 applies**: RIP-like
protocols converge absolutely — from any state, under loss, reordering
and duplication, to a unique fixed point.  This is the paper's worked
"practical implication" (Section 4.2): conditional policies can be
added to RIP without endangering convergence, provided they stay
strictly increasing.

:class:`ConditionalHopEdge` models exactly such a policy-rich edge: a
route map that applies a different increment depending on a predicate
over the route (Eq. 2 of the paper) — strictly increasing as long as
both branches are, and demonstrably *non-distributive*.
"""

from __future__ import annotations

from typing import Callable, Iterator

from ..core.algebra import EdgeFunction, Route
from .base import KeyOrderedAlgebra


class HopCountAlgebra(KeyOrderedAlgebra):
    """Bounded min-plus: the RIP algebra (default bound 16)."""

    name = "hop-count"
    is_finite = True

    def __init__(self, bound: int = 16):
        if bound < 1:
            raise ValueError("hop-count bound must be >= 1")
        self.bound = bound
        self.name = f"hop-count<{bound}>"

    @property
    def trivial(self) -> Route:
        return 0

    @property
    def invalid(self) -> Route:
        return self.bound

    def preference_key(self, route: Route):
        return route

    def routes(self) -> Iterator[Route]:
        return iter(range(self.bound + 1))

    def sample_edge_function(self, rng) -> EdgeFunction:
        if rng.random() < 0.3:
            return ConditionalHopEdge.random(rng, self.bound)
        return HopEdge(rng.randint(1, max(1, self.bound // 4)), self.bound)

    def edge(self, weight: int = 1) -> "HopEdge":
        return HopEdge(weight, self.bound)


class HopEdge(EdgeFunction):
    """``f_w(a) = min(a + w, B)`` with ``w ≥ 1``."""

    def __init__(self, weight: int, bound: int):
        if weight < 1:
            raise ValueError("hop increments must be >= 1 (strictly increasing)")
        self.weight = weight
        self.bound = bound

    def __call__(self, route: Route) -> Route:
        return min(route + self.weight, self.bound)

    def encoded_table(self, encoding):
        """FiniteEncoding fast path: hop counts encode to themselves, so
        the lookup table is the saturating shift in closed form."""
        if not encoding.identity or encoding.size != self.bound + 1:
            return None
        return [min(c + self.weight, self.bound) for c in range(self.bound + 1)]

    def __repr__(self) -> str:
        return f"HopEdge(+{self.weight}, cap={self.bound})"


class ConditionalHopEdge(EdgeFunction):
    """A route-map edge: ``if P(a) then g(a) else h(a)`` (Eq. 2).

    ``P`` is a predicate on the route value; both branches are
    increment-and-cap maps, so the composite stays strictly increasing
    (the paper's observation that strictly increasing policy languages
    are closed under route maps) while breaking distributivity.
    """

    def __init__(self, predicate: Callable[[Route], bool],
                 then_weight: int, else_weight: int, bound: int,
                 label: str = "P"):
        if min(then_weight, else_weight) < 1:
            raise ValueError("both branches must be strictly increasing")
        self.predicate = predicate
        self.then_weight = then_weight
        self.else_weight = else_weight
        self.bound = bound
        self.label = label

    def __call__(self, route: Route) -> Route:
        if route == self.bound:          # f(∞̄) = ∞̄
            return self.bound
        w = self.then_weight if self.predicate(route) else self.else_weight
        return min(route + w, self.bound)

    @classmethod
    def random(cls, rng, bound: int) -> "ConditionalHopEdge":
        """A random threshold route map: different cost above/below a cut."""
        cut = rng.randint(1, max(1, bound - 1))
        return cls(lambda a, c=cut: a < c,
                   rng.randint(1, 3), rng.randint(1, 3), bound,
                   label=f"a<{cut}")

    def __repr__(self) -> str:
        return (f"ConditionalHopEdge(if {self.label} then +{self.then_weight} "
                f"else +{self.else_weight}, cap={self.bound})")


class UncappedHopEdge(EdgeFunction):
    """A *deliberately broken* edge: increments without the cap.

    Escapes the finite carrier {0..B}; used by negative-control tests to
    show the law checker catching routes outside S and the convergence
    machinery rejecting the algebra.
    """

    def __init__(self, weight: int):
        self.weight = weight

    def __call__(self, route: Route) -> Route:
        return route + self.weight

    def __repr__(self) -> str:
        return f"UncappedHopEdge(+{self.weight})"
