"""Widest paths: ``(ℕ∞, max, F_min, ∞, 0)`` — row 3 of Table 2.

A route is the bottleneck bandwidth of a path; ⊕ prefers *larger*
bandwidth; an edge caps the bandwidth at its own capacity
(``f_c(a) = min(c, a)``).  The trivial route is ∞ (a node reaches
itself with unbounded bandwidth) and the invalid route is 0.

This algebra is **increasing but not strictly increasing**
(``min(c, a) = a`` whenever ``a ≤ c``), which makes it the canonical
witness that Theorem 7's *strictly* increasing hypothesis is needed for
distance-vector convergence — and that Theorem 11 rescues it: the
path-vector lift ``AddPaths(WidestPathsAlgebra())`` converges
absolutely because path algebras only need the plain increasing
property (Section 5.1's observation that P3 upgrades increasing to
strictly increasing).
"""

from __future__ import annotations

import math

from ..core.algebra import EdgeFunction, Route
from .base import KeyOrderedAlgebra

INF = math.inf


class CapacityEdge(EdgeFunction):
    """``f_c(a) = min(c, a)`` — the bottleneck update."""

    def __init__(self, capacity: float):
        if capacity < 0:
            raise ValueError("capacities must be non-negative")
        self.capacity = capacity

    def __call__(self, route: Route) -> Route:
        return min(self.capacity, route)

    def __repr__(self) -> str:
        return f"CapacityEdge({self.capacity})"


class WidestPathsAlgebra(KeyOrderedAlgebra):
    """The max-min (bottleneck) algebra over ℕ∞."""

    name = "widest-paths"
    is_finite = False

    def __init__(self, max_sample_capacity: int = 10):
        self.max_sample_capacity = max_sample_capacity

    @property
    def trivial(self) -> Route:
        return INF

    @property
    def invalid(self) -> Route:
        return 0

    def preference_key(self, route: Route):
        # larger bandwidth preferred: negate (INF maps to -INF, the minimum)
        return -route

    def sample_route(self, rng) -> Route:
        roll = rng.random()
        if roll < 0.1:
            return 0
        if roll < 0.2:
            return INF
        return rng.randint(1, self.max_sample_capacity)

    def sample_edge_function(self, rng) -> CapacityEdge:
        return CapacityEdge(rng.randint(1, self.max_sample_capacity))

    def edge(self, capacity: float) -> CapacityEdge:
        """Convenience factory: the edge function capping at ``capacity``."""
        return CapacityEdge(capacity)


class BoundedWidestPathsAlgebra(WidestPathsAlgebra):
    """Widest paths over the *finite* carrier {0, 1, ..., W, ∞}.

    Real links have quantised capacities; bounding the carrier makes the
    algebra finite so the Section 4.1 ultrametric machinery (which needs
    to enumerate S) can be exercised on it — it is the worked example of
    an algebra that is finite and increasing but *not strictly*
    increasing, on which σ can stall away from the Theorem 7 guarantee.
    """

    name = "widest-paths-bounded"
    is_finite = True

    def __init__(self, max_capacity: int = 5):
        super().__init__(max_sample_capacity=max_capacity)
        self.max_capacity = max_capacity

    def routes(self):
        yield 0
        for c in range(1, self.max_capacity + 1):
            yield c
        yield INF

    def sample_route(self, rng) -> Route:
        universe = list(self.routes())
        return universe[rng.randrange(len(universe))]

    def sample_edge_function(self, rng) -> CapacityEdge:
        return CapacityEdge(rng.randint(1, self.max_capacity))
