"""Stable Paths Problem (SPP) instances as routing algebras — the
negative controls.

Griffin, Shepherd & Wilfong's SPP formalism (Related work, Section 1.1)
captures BGP divergence: each node ranks the *paths* it is willing to
use towards a single destination, and a solution is an assignment of
paths that is simultaneously each node's best available choice.  The
classic gadgets are:

* **DISAGREE** — two solutions: the canonical *BGP wedgie* (RFC 4264).
  Which one the network settles into depends on message timing, and
  leaving the unintended one needs manual intervention.
* **BAD GADGET** — no solution at all: the protocol oscillates forever.
* **GOOD GADGET** — a unique solution reached from everywhere, despite
  non-increasing preferences (showing the conditions are sufficient,
  not necessary).

Encoding into our framework: routes are ``(rank, path)`` pairs; the
*edge function* of ``(i, j)`` extends the path and looks it up in node
``i``'s ranking table (unranked paths are filtered).  The choice
operator is plain min by ``(rank, path)``.  Because ranks are arbitrary
per node, nothing forces an extension to be worse than what it extends
— these algebras deliberately **violate the increasing law**, which the
verification suite demonstrates, and the wedgie/oscillation benches
show the operational consequences that Theorems 7/11 rule out for
increasing algebras.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from ..core.algebra import EdgeFunction, PathAlgebra, Route
from ..core.paths import BOTTOM, can_extend, extend
from ..core.state import Network

#: Invalid route sentinel.
SPP_INVALID = ("invalid",)

SPPRoute = Tuple[int, Tuple[int, ...]]
"""A valid SPP route: ``(rank, path)`` — lower rank preferred."""


class SPPAlgebra(PathAlgebra):
    """The path-ranking algebra for a fixed SPP instance.

    ``rankings`` maps ``node -> {path: rank}``; paths absent from a
    node's table are forbidden (filtered to invalid).
    """

    name = "stable-paths-problem"
    is_finite = False

    def __init__(self, rankings: Dict[int, Dict[Tuple[int, ...], int]],
                 n_nodes: int):
        self.rankings = rankings
        self.n_nodes = n_nodes

    @property
    def trivial(self) -> Route:
        return (0, ())

    @property
    def invalid(self) -> Route:
        return SPP_INVALID

    def choice(self, x: Route, y: Route) -> Route:
        if x == SPP_INVALID:
            return y
        if y == SPP_INVALID:
            return x
        return x if x <= y else y  # (rank, path) lexicographic

    def path(self, route: Route):
        if route == SPP_INVALID:
            return BOTTOM
        return route[1]

    def rank_of(self, node: int, path: Tuple[int, ...]) -> Optional[int]:
        """Node's rank for a path, or ``None`` when forbidden."""
        return self.rankings.get(node, {}).get(path)

    def edge(self, i: int, j: int) -> "SPPEdge":
        return SPPEdge(self, i, j)

    def sample_route(self, rng) -> Route:
        if rng.random() < 0.15:
            return SPP_INVALID
        ranked = [(node, path, rank)
                  for node, table in self.rankings.items()
                  for path, rank in table.items()]
        if not ranked and rng.random() < 0.5:
            return (0, ())
        if not ranked:
            return SPP_INVALID
        _node, path, rank = ranked[rng.randrange(len(ranked))]
        return (rank, path)

    def sample_edge_function(self, rng) -> "SPPEdge":
        i, j = rng.sample(range(self.n_nodes), 2)
        return SPPEdge(self, i, j)


class SPPEdge(EdgeFunction):
    """Extend the path and apply the head node's ranking table."""

    def __init__(self, algebra: SPPAlgebra, i: int, j: int):
        self.algebra = algebra
        self.i = i
        self.j = j

    def __call__(self, route: Route) -> Route:
        if route == SPP_INVALID:
            return SPP_INVALID
        _rank, path = route
        if not can_extend(self.i, self.j, path):
            return SPP_INVALID
        new_path = extend(self.i, self.j, path)
        new_rank = self.algebra.rank_of(self.i, new_path)
        if new_rank is None:
            return SPP_INVALID
        return (new_rank, new_path)

    def __repr__(self) -> str:
        return f"SPPEdge(({self.i},{self.j}))"


# ----------------------------------------------------------------------
# The gadget instances (destination is always node 0)
# ----------------------------------------------------------------------


def _network_from_rankings(rankings: Dict[int, Dict[Tuple[int, ...], int]],
                           n: int, edges: Iterable[Tuple[int, int]],
                           name: str) -> Network:
    algebra = SPPAlgebra(rankings, n)
    net = Network(algebra, n, name=name)
    for (i, j) in edges:
        net.set_edge(i, j, algebra.edge(i, j))
    return net


def disagree() -> Network:
    """DISAGREE: 3 nodes, two stable states — the BGP wedgie.

    Nodes 1 and 2 each prefer to reach 0 *through the other* over their
    direct link.  Both ``{(1,0), (2,1,0)}`` and ``{(2,0), (1,2,0)}``
    are stable; timing decides which materialises.
    """
    rankings = {
        1: {(1, 2, 0): 0, (1, 0): 1},
        2: {(2, 1, 0): 0, (2, 0): 1},
    }
    edges = [(1, 0), (2, 0), (1, 2), (2, 1),
             (0, 1), (0, 2)]  # reverse directions carry no ranked paths
    return _network_from_rankings(rankings, 3, edges, "DISAGREE")


def bad_gadget() -> Network:
    """BAD GADGET: 4 nodes, no stable state — persistent oscillation.

    Each outer node ``i ∈ {1, 2, 3}`` prefers the route through its
    clockwise neighbour over its direct route; no assignment satisfies
    everyone (Griffin–Shepherd–Wilfong).
    """
    rankings = {
        1: {(1, 2, 0): 0, (1, 0): 1},
        2: {(2, 3, 0): 0, (2, 0): 1},
        3: {(3, 1, 0): 0, (3, 0): 1},
    }
    edges = [(1, 0), (2, 0), (3, 0), (1, 2), (2, 3), (3, 1)]
    return _network_from_rankings(rankings, 4, edges, "BAD-GADGET")


def good_gadget() -> Network:
    """GOOD GADGET: unique solution despite non-increasing preferences.

    Same wiring as BAD GADGET but node 3 prefers its direct route, which
    breaks the cyclic dependency; every execution converges to the same
    state (the conditions of Theorem 7/11 are sufficient, not necessary).
    """
    rankings = {
        1: {(1, 2, 0): 0, (1, 0): 1},
        2: {(2, 3, 0): 0, (2, 0): 1},
        3: {(3, 0): 0, (3, 1, 0): 1},
    }
    edges = [(1, 0), (2, 0), (3, 0), (1, 2), (2, 3), (3, 1)]
    return _network_from_rankings(rankings, 4, edges, "GOOD-GADGET")


def increasing_disagree() -> Network:
    """DISAGREE *repaired*: the same topology with increasing rankings.

    Ranks respect path extension (longer paths rank strictly worse), so
    the algebra is strictly increasing and Theorem 11 applies — exactly
    one stable state survives.  The wedgie bench contrasts this network
    with :func:`disagree`.
    """
    rankings = {
        1: {(1, 0): 0, (1, 2, 0): 1},
        2: {(2, 0): 0, (2, 1, 0): 1},
    }
    edges = [(1, 0), (2, 0), (1, 2), (2, 1)]
    return _network_from_rankings(rankings, 3, edges, "DISAGREE-increasing")


def spp_fixed_point_candidates(net: Network, dest: int = 0) -> List[Route]:
    """All candidate routes any node could hold towards ``dest``.

    The union of every ranked (rank, path) pair with the right
    destination, plus trivial and invalid — the finite search space for
    exhaustive fixed-point enumeration on gadgets.
    """
    algebra: SPPAlgebra = net.algebra  # type: ignore[assignment]
    candidates: List[Route] = [algebra.invalid]
    for _node, table in algebra.rankings.items():
        for path, rank in table.items():
            if path and path[-1] == dest:
                candidates.append((rank, path))
    return candidates
