"""Lexicographic product of routing algebras.

``Lexicographic(A, B)`` routes are pairs ``(a, b)``; choice compares the
``A`` component first and falls back to ``B`` on ties.  This is the
standard way multi-criteria protocols are assembled (BGP's decision
ladder is one long lexicographic product), and the combinator lets the
test-suite manufacture algebras with prescribed law profiles:

* if ``A`` and ``B`` satisfy the five required laws, so does the
  product (checked, not assumed);
* the product is strictly increasing when ``A`` is strictly increasing,
  or when ``A`` is increasing and ``B`` is strictly increasing —
  the ablation bench uses both constructions;
* distributivity is usually *destroyed* by lexicographic composition
  even when both factors are distributive (the classic
  shortest-widest example), which is exactly the "policy-rich" regime
  the paper targets.
"""

from __future__ import annotations

from typing import Iterator, Tuple

from ..core.algebra import EdgeFunction, Route, RoutingAlgebra


class PairEdge(EdgeFunction):
    """Componentwise application: ``(f × g)(a, b) = (f(a), g(b))``."""

    def __init__(self, first: EdgeFunction, second: EdgeFunction):
        self.first = first
        self.second = second

    def __call__(self, route: Route) -> Route:
        a, b = route
        return (self.first(a), self.second(b))

    def __repr__(self) -> str:
        return f"PairEdge({self.first!r}, {self.second!r})"


class LexicographicAlgebra(RoutingAlgebra):
    """The lexicographic product ``A ×ₗₑₓ B``."""

    def __init__(self, first: RoutingAlgebra, second: RoutingAlgebra):
        self.first = first
        self.second = second
        self.name = f"lex({first.name}, {second.name})"
        self.is_finite = first.is_finite and second.is_finite

    @property
    def trivial(self) -> Route:
        return (self.first.trivial, self.second.trivial)

    @property
    def invalid(self) -> Route:
        return (self.first.invalid, self.second.invalid)

    def _is_invalid(self, r: Route) -> bool:
        """Invalid up to quotient: either component invalid kills the pair.

        A route that is unreachable in *one* criterion is unreachable,
        full stop — e.g. in widest-then-shortest, ``(3, ∞)`` (some
        bandwidth but infinite distance) denotes no usable path.  The
        quotient also keeps the product strictly increasing when a
        factor's edge function is the identity on its own invalid.
        """
        return (self.first.equal(r[0], self.first.invalid)
                or self.second.equal(r[1], self.second.invalid))

    def equal(self, x: Route, y: Route) -> bool:
        xi, yi = self._is_invalid(x), self._is_invalid(y)
        if xi or yi:
            return xi and yi
        return (self.first.equal(x[0], y[0])
                and self.second.equal(x[1], y[1]))

    def choice(self, x: Route, y: Route) -> Route:
        if self._is_invalid(x):
            return y
        if self._is_invalid(y):
            return x
        if self.first.lt(x[0], y[0]):
            return x
        if self.first.lt(y[0], x[0]):
            return y
        # first components tie in the A order; B decides
        if self.second.leq(x[1], y[1]):
            return x
        return y

    def routes(self) -> Iterator[Route]:
        for a in self.first.routes():
            for b in self.second.routes():
                yield (a, b)

    def sample_route(self, rng) -> Route:
        return (self.first.sample_route(rng), self.second.sample_route(rng))

    def sample_edge_function(self, rng) -> PairEdge:
        return PairEdge(self.first.sample_edge_function(rng),
                        self.second.sample_edge_function(rng))

    def edge(self, first_fn: EdgeFunction, second_fn: EdgeFunction) -> PairEdge:
        return PairEdge(first_fn, second_fn)
