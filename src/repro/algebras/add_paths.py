"""``AddPaths``: lift any routing algebra to a path algebra (Section 5).

This is the paper's mechanism for rescuing infinite-carrier algebras
from count-to-infinity: track the simple path each route was generated
along, reject looping extensions, and tie-break route choice by path.
Formally, routes become pairs ``(value, path)`` with

* ``0̄ = (0̄_base, [])``,  ``∞̄ = (∞̄_base, ⊥)``;
* ``⊕`` prefers the better base value, then the *shorter* path, then
  the lexicographically smaller path (the extra tie-breaks make ⊕ a
  total order, hence associative/commutative/selective);
* the edge function on ``(i, j)`` applies P3's guards — reject if the
  edge does not plug into the path's source or if ``i`` already appears
  — then applies the base edge function to the value and prepends
  ``(i, j)`` to the path.

Because every valid extension strictly lengthens the path, an
*increasing* base algebra lifts to a **strictly increasing** path
algebra (the paper's observation below Definition 14), and Theorem 11
gives absolute convergence even when the base carrier is infinite.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

from ..core.algebra import EdgeFunction, PathAlgebra, Route, RoutingAlgebra
from ..core.paths import BOTTOM, can_extend, extend, is_simple, length


class PathRouteEdge(EdgeFunction):
    """The lifted edge function for edge ``(i, j)`` with base policy ``fn``."""

    def __init__(self, algebra: "AddPaths", i: int, j: int, fn: EdgeFunction):
        self.algebra = algebra
        self.i = i
        self.j = j
        self.fn = fn

    def __call__(self, route: Route) -> Route:
        alg = self.algebra
        if alg.equal(route, alg.invalid):
            return alg.invalid
        value, path = route
        if path is BOTTOM or not can_extend(self.i, self.j, path):
            return alg.invalid
        new_value = self.fn(value)
        if alg.base.equal(new_value, alg.base.invalid):
            return alg.invalid
        return (new_value, extend(self.i, self.j, path))

    def __repr__(self) -> str:
        return f"PathRouteEdge(({self.i},{self.j}), {self.fn!r})"


class AddPaths(PathAlgebra):
    """The path-algebra lift of ``base``.

    ``n_nodes`` bounds the node universe used when *sampling* arbitrary
    (possibly inconsistent) routes for verification; the algebra itself
    works for any node ids.
    """

    def __init__(self, base: RoutingAlgebra, n_nodes: int = 8):
        self.base = base
        self.n_nodes = n_nodes
        self.name = f"add-paths({base.name})"
        # Even when the base is finite the lifted carrier is finite too
        # (finitely many simple paths over finitely many sampled nodes),
        # but enumerating it requires the node universe; we only claim
        # finiteness for ultrametric purposes via the consistent subset.
        self.is_finite = False

    # -- distinguished routes --------------------------------------------

    @property
    def trivial(self) -> Route:
        return (self.base.trivial, ())

    @property
    def invalid(self) -> Route:
        return (self.base.invalid, BOTTOM)

    # -- equality with invalid canonicalisation ----------------------------

    def _is_invalid(self, route: Route) -> bool:
        """Invalid-ness up to quotient: ⊥ path or invalid base value.

        Arbitrary starting states may contain denormalised pairs such as
        ``(5, ⊥)``; the algebra treats every such pair as ∞̄ (this is the
        quotient P1 demands: ``x = ∞̄ ⇔ path(x) = ⊥``).
        """
        value, path = route
        return path is BOTTOM or self.base.equal(value, self.base.invalid)

    def equal(self, x: Route, y: Route) -> bool:
        xi, yi = self._is_invalid(x), self._is_invalid(y)
        if xi or yi:
            return xi and yi
        return self.base.equal(x[0], y[0]) and x[1] == y[1]

    # -- choice -------------------------------------------------------------

    def _path_key(self, path) -> Tuple:
        return (length(path), tuple(path))

    def choice(self, x: Route, y: Route) -> Route:
        if self._is_invalid(x):
            return y
        if self._is_invalid(y):
            return x
        if self.base.lt(x[0], y[0]):
            return x
        if self.base.lt(y[0], x[0]):
            return y
        # equal base preference: shorter path wins, then lexicographic
        return x if self._path_key(x[1]) <= self._path_key(y[1]) else y

    # -- the path projection (Definition 14) ---------------------------------

    def path(self, route: Route):
        if self._is_invalid(route):
            return BOTTOM
        return route[1]

    # -- edges -----------------------------------------------------------------

    def edge(self, i: int, j: int, base_fn: EdgeFunction) -> PathRouteEdge:
        """Lift base policy ``base_fn`` onto the edge ``(i, j)``."""
        return PathRouteEdge(self, i, j, base_fn)

    # -- sampling ----------------------------------------------------------------

    def sample_path(self, rng, allow_bottom: bool = False):
        """A random simple path over the node universe (maybe ⊥)."""
        if allow_bottom and rng.random() < 0.1:
            return BOTTOM
        k = rng.randint(0, min(4, self.n_nodes))
        if k == 0:
            return ()
        nodes = rng.sample(range(self.n_nodes), min(k + 1, self.n_nodes))
        return tuple(nodes)

    def sample_route(self, rng) -> Route:
        """Arbitrary — usually *inconsistent* — routes, as Theorem 11 allows."""
        if rng.random() < 0.1:
            return self.invalid
        value = self.base.sample_route(rng)
        if self.base.equal(value, self.base.invalid):
            return self.invalid
        return (value, self.sample_path(rng))

    def sample_edge_function(self, rng) -> PathRouteEdge:
        i, j = rng.sample(range(self.n_nodes), 2)
        return self.edge(i, j, self.base.sample_edge_function(rng))
