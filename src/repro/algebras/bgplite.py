"""BGPLite — the safe-by-design path-vector algebra of Section 7.

A faithful Python transliteration of the paper's Agda development:

* a route is either ``INVALID`` or ``valid (lp, communities, path)``
  with ``lp`` a local-preference *level* (lower = better, so that
  policies can only make routes worse by raising it), a finite set of
  community tags, and a simple path;
* the choice operator follows the paper's decision procedure:

  1. an invalid route loses to anything valid;
  2. else the strictly lower ``lp`` level wins;
  3. else the shorter path wins;
  4. else ties break by lexicographic path comparison
     (we additionally break *exact* residual ties — same lp, same path,
     different communities — by a canonical community comparison, so
     that ⊕ is a total order; the paper's model leaves this case
     implicit);

* policies are an AST: ``reject``, ``incrPrefBy n``, ``addComm c``,
  ``delComm c``, ``compose p q`` and ``condition c p`` over a predicate
  language ``and/or/not/inPath/inComm/lprefEq``;
* the edge function ``f_(i,j,pol)`` first performs the P3 guards
  (``(i,j) ⇿ path`` and ``i ∉ path``), then prepends the edge and
  applies the policy.

Because ``incrPrefBy`` can only *raise* the level and every edge
traversal strictly lengthens the path, **every expressible policy is
increasing** — there is no way to write a policy that violates the
Theorem 11 preconditions.  That is the paper's "safe-by-design" claim,
and :func:`random_policy` + the verification suite check it by
generating thousands of adversarial policies.

The deliberately *unsafe* extension :class:`SetPref` (which models real
BGP's ability to overwrite local-preference on import) is provided as a
negative control: a single ``setPref 0`` policy breaks the increasing
law and, on the right gadget, resurrects wedgies.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import FrozenSet, Optional, Tuple

from ..core.algebra import EdgeFunction, PathAlgebra, Route
from ..core.paths import BOTTOM, can_extend, extend, length


# ----------------------------------------------------------------------
# Routes
# ----------------------------------------------------------------------


class _InvalidRoute:
    """The invalid BGPLite route (singleton)."""

    _instance: Optional["_InvalidRoute"] = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "invalid"

    def __reduce__(self):
        return (_InvalidRoute, ())


INVALID = _InvalidRoute()


@dataclass(frozen=True)
class BGPRoute:
    """``valid lp communities path`` — an ordinary BGPLite route."""

    lp: int
    communities: FrozenSet[int]
    path: Tuple[int, ...]

    def __repr__(self) -> str:
        comms = "{" + ",".join(map(str, sorted(self.communities))) + "}"
        return f"valid(lp={self.lp}, comms={comms}, path={self.path})"


def valid(lp: int = 0, communities=(), path: Tuple[int, ...] = ()) -> BGPRoute:
    """Convenience constructor mirroring the Agda ``valid`` constructor."""
    return BGPRoute(lp, frozenset(communities), tuple(path))


# ----------------------------------------------------------------------
# Condition language
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Condition:
    """Base class for the predicate AST."""

    def evaluate(self, route: BGPRoute) -> bool:
        raise NotImplementedError


@dataclass(frozen=True)
class And(Condition):
    left: Condition
    right: Condition

    def evaluate(self, route: BGPRoute) -> bool:
        return self.left.evaluate(route) and self.right.evaluate(route)


@dataclass(frozen=True)
class Or(Condition):
    left: Condition
    right: Condition

    def evaluate(self, route: BGPRoute) -> bool:
        return self.left.evaluate(route) or self.right.evaluate(route)


@dataclass(frozen=True)
class Not(Condition):
    inner: Condition

    def evaluate(self, route: BGPRoute) -> bool:
        return not self.inner.evaluate(route)


@dataclass(frozen=True)
class InPath(Condition):
    """"Does the route's path visit ``node``?" — path-aware policy."""

    node: int

    def evaluate(self, route: BGPRoute) -> bool:
        return self.node in route.path


@dataclass(frozen=True)
class InComm(Condition):
    """"Is community ``community`` attached?" — e.g. the paper's "17"."""

    community: int

    def evaluate(self, route: BGPRoute) -> bool:
        return self.community in route.communities


@dataclass(frozen=True)
class LprefEq(Condition):
    value: int

    def evaluate(self, route: BGPRoute) -> bool:
        return route.lp == self.value


# ----------------------------------------------------------------------
# Policy language
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Policy:
    """Base class for the policy AST.

    ``apply`` implements the paper's semantics: the invalid route is a
    fixed point of every policy.
    """

    def apply(self, route):
        if route is INVALID:
            return INVALID
        return self._apply_valid(route)

    def _apply_valid(self, route: BGPRoute):
        raise NotImplementedError


@dataclass(frozen=True)
class Reject(Policy):
    """Route filter: map everything to the invalid route."""

    def _apply_valid(self, route: BGPRoute):
        return INVALID


@dataclass(frozen=True)
class IncrPrefBy(Policy):
    """Raise the local-preference *level* by ``amount`` (≥ 0): never
    makes a route better — the linchpin of safety-by-design."""

    amount: int

    def __post_init__(self):
        if self.amount < 0:
            raise ValueError(
                "IncrPrefBy cannot lower the level; that is what makes the "
                "language increasing (use the UnsafeSetPref control to break it)")

    def _apply_valid(self, route: BGPRoute):
        # dataclasses.replace keeps the policy polymorphic over route
        # representations (plain BGPRoute, PaddedRoute with prepending)
        return replace(route, lp=route.lp + self.amount)


@dataclass(frozen=True)
class AddComm(Policy):
    community: int

    def _apply_valid(self, route: BGPRoute):
        return replace(route,
                       communities=route.communities | {self.community})


@dataclass(frozen=True)
class DelComm(Policy):
    community: int

    def _apply_valid(self, route: BGPRoute):
        return replace(route,
                       communities=route.communities - {self.community})


@dataclass(frozen=True)
class Compose(Policy):
    """``compose p q`` applies ``p`` first, then ``q`` (Agda order)."""

    first: Policy
    second: Policy

    def _apply_valid(self, route: BGPRoute):
        return self.second.apply(self.first.apply(route))


@dataclass(frozen=True)
class If(Policy):
    """``condition c p``: apply ``p`` when ``c`` holds, else no-op."""

    condition: Condition
    policy: Policy

    def _apply_valid(self, route: BGPRoute):
        if self.condition.evaluate(route):
            return self.policy.apply(route)
        return route


@dataclass(frozen=True)
class SetPref(Policy):
    """UNSAFE: overwrite the level, as real (external) BGP allows.

    Not part of the safe language — constructing an edge with it models
    today's BGP and is used by negative-control tests to demonstrate the
    increasing law breaking (Section 8.2's "hidden information" issue).
    """

    value: int

    def _apply_valid(self, route: BGPRoute):
        return replace(route, lp=self.value)


# ----------------------------------------------------------------------
# The algebra
# ----------------------------------------------------------------------


class BGPLiteAlgebra(PathAlgebra):
    """The Section 7 algebra ``(Route, ⊕, F, valid 0 ∅ [], invalid)``."""

    name = "bgp-lite"
    is_finite = False

    def __init__(self, n_nodes: int = 8, community_universe: int = 8,
                 max_sample_lp: int = 8):
        self.n_nodes = n_nodes
        self.community_universe = community_universe
        self.max_sample_lp = max_sample_lp

    @property
    def trivial(self) -> Route:
        return valid(0, (), ())

    @property
    def invalid(self) -> Route:
        return INVALID

    # -- choice: the paper's four-step decision procedure -------------------

    def _key(self, r: BGPRoute):
        return (r.lp, len(r.path), r.path, tuple(sorted(r.communities)))

    def choice(self, x: Route, y: Route) -> Route:
        if x is INVALID:
            return y
        if y is INVALID:
            return x
        return x if self._key(x) <= self._key(y) else y

    def equal(self, a: Route, b: Route) -> bool:
        return a == b

    # -- path projection -----------------------------------------------------

    def path(self, route: Route):
        if route is INVALID:
            return BOTTOM
        return route.path

    # -- edges ------------------------------------------------------------------

    def edge(self, i: int, j: int, policy: Policy = IncrPrefBy(0)) -> "BGPEdge":
        return BGPEdge(i, j, policy)

    # -- sampling ------------------------------------------------------------------

    def sample_route(self, rng) -> Route:
        if rng.random() < 0.1:
            return INVALID
        lp = rng.randint(0, self.max_sample_lp)
        comms = frozenset(c for c in range(self.community_universe)
                          if rng.random() < 0.2)
        k = rng.randint(0, min(4, self.n_nodes - 1))
        path = tuple(rng.sample(range(self.n_nodes), k + 1)) if k else ()
        return BGPRoute(lp, comms, path)

    def sample_edge_function(self, rng) -> "BGPEdge":
        i, j = rng.sample(range(self.n_nodes), 2)
        return BGPEdge(i, j, random_policy(rng, self.community_universe,
                                           self.n_nodes))


class BGPEdge(EdgeFunction):
    """``f_(i,j,pol)`` — P3 guards, path extension, then policy application."""

    def __init__(self, i: int, j: int, policy: Policy):
        self.i = i
        self.j = j
        self.policy = policy

    def __call__(self, route: Route) -> Route:
        if route is INVALID:
            return INVALID
        if not can_extend(self.i, self.j, route.path):
            return INVALID
        extended = BGPRoute(route.lp, route.communities,
                            extend(self.i, self.j, route.path))
        return self.policy.apply(extended)

    def __repr__(self) -> str:
        return f"BGPEdge(({self.i},{self.j}), {self.policy!r})"


# ----------------------------------------------------------------------
# Random policies: the adversarial policy generator
# ----------------------------------------------------------------------


def random_condition(rng, community_universe: int, n_nodes: int,
                     depth: int = 2) -> Condition:
    """A random predicate of bounded depth over the condition language."""
    if depth <= 0 or rng.random() < 0.4:
        leaf = rng.randrange(3)
        if leaf == 0:
            return InPath(rng.randrange(n_nodes))
        if leaf == 1:
            return InComm(rng.randrange(community_universe))
        return LprefEq(rng.randint(0, 5))
    op = rng.randrange(3)
    if op == 0:
        return And(random_condition(rng, community_universe, n_nodes, depth - 1),
                   random_condition(rng, community_universe, n_nodes, depth - 1))
    if op == 1:
        return Or(random_condition(rng, community_universe, n_nodes, depth - 1),
                  random_condition(rng, community_universe, n_nodes, depth - 1))
    return Not(random_condition(rng, community_universe, n_nodes, depth - 1))


def random_policy(rng, community_universe: int = 8, n_nodes: int = 8,
                  depth: int = 3, allow_reject: bool = True) -> Policy:
    """A random *safe* policy: arbitrary composition of the Section 7 AST.

    Every value this returns is increasing by construction — the
    safety-by-design bench feeds thousands of these to the law checker
    and to live convergence runs.
    """
    if depth <= 0:
        choices = ["incr", "add", "del"] + (["reject"] if allow_reject else [])
        kind = rng.choice(choices)
        if kind == "reject":
            return Reject()
        if kind == "incr":
            return IncrPrefBy(rng.randint(0, 4))
        if kind == "add":
            return AddComm(rng.randrange(community_universe))
        return DelComm(rng.randrange(community_universe))
    roll = rng.random()
    if roll < 0.3:
        return Compose(
            random_policy(rng, community_universe, n_nodes, depth - 1,
                          allow_reject),
            random_policy(rng, community_universe, n_nodes, depth - 1,
                          allow_reject))
    if roll < 0.6:
        return If(random_condition(rng, community_universe, n_nodes),
                  random_policy(rng, community_universe, n_nodes, depth - 1,
                                allow_reject))
    return random_policy(rng, community_universe, n_nodes, 0, allow_reject)
