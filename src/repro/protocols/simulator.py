"""Event-driven message-passing DBF simulator.

Where :func:`repro.core.asynchronous.delta_run` executes the paper's δ
recursion against an abstract schedule, this simulator executes a
*protocol*: nodes hold tables and neighbour caches, send triggered
updates when their tables change, and periodically refresh their
announcements (the soft-state repair that keeps information flowing
when messages are lost — RIP's periodic advertisements).

The channel model (:class:`~repro.protocols.messages.LinkConfig`)
delivers each announcement after a random delay, drops it with
probability ``loss``, duplicates it with probability ``duplicate`` and
— unless FIFO is forced — reorders freely.  All randomness flows from a
single seed, so runs are reproducible.

Announcement storms (bootstrap and periodic refresh, where a node
re-advertises *every* destination to *every* out-neighbour) are
coalesced into **per-link vector events**: the surviving per-destination
announcements for one ``(sender, receiver)`` link travel as one heap
event — the real-protocol analogue of packing many NLRIs into one BGP
UPDATE — cutting the event count from O(n · E) to O(E) per storm.
Loss is still drawn per announcement (so per-destination loss
statistics are unchanged); delay, FIFO ordering and duplication apply
to the vector, and the receiver ingests the whole vector before
recomputing, so each activation sees all the fresh data at once.
Per-announcement accounting (``sent`` / ``lost`` / ``delivered`` /
``duplicated``) is preserved.

Termination: the run ends when no table entry has changed for
``quiet_period`` time units and no messages are in flight (refresh
timers shut themselves off once the network is quiet, and resume on any
change).  The result records whether the final global state is σ-stable
— the operational check of Definition 4.
"""

from __future__ import annotations

import heapq
import itertools
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..core.algebra import Route
from ..core.capabilities import resolve_engine, warn_deprecated
from ..core.state import Network, RoutingState
from ..core.synchronous import ENGINES, is_stable
from .messages import LinkConfig, RELIABLE
from .node import ProtocolNode
from .trace import Activation, MessageStats, TableChange, Trace


@dataclass
class SimulationResult:
    """Outcome of one simulator run."""

    final_state: RoutingState
    converged: bool                 #: final state is σ-stable
    quiesced: bool                  #: run ended by quiescence (not max_time)
    sim_time: float                 #: simulation clock at the end
    convergence_time: float         #: time of the last table change
    trace: Trace

    @property
    def stats(self) -> MessageStats:
        return self.trace.stats


@dataclass(order=True)
class _Event:
    time: float
    seq: int
    kind: str = field(compare=False)
    payload: tuple = field(compare=False)


class Simulator:
    """One simulation instance over a network.

    ``link_config`` may be a single :class:`LinkConfig` applied to every
    directed link or a dict keyed by ``(sender, receiver)``; missing
    keys fall back to ``default_link``.
    """

    def __init__(self, network: Network, seed: int = 0,
                 link_config=None, default_link: LinkConfig = RELIABLE,
                 refresh_interval: float = 10.0, quiet_period: float = 30.0,
                 engine: str = "incremental", workers: Optional[int] = None,
                 stability_engine=None, stability_resolution=None):
        if engine != "auto" and engine not in ENGINES:
            raise ValueError(f"unknown engine {engine!r}")
        self.network = network
        self.engine = engine
        self.workers = workers           # pool size for engine="parallel"
        self._vec_engine = None          # built lazily, auto-refreshing
        #: engine borrowed from a RoutingSession — used for the σ-check
        #: but never closed here (the session owns its lifetime)
        self._external_engine = stability_engine
        self._resolution = stability_resolution
        self.rng = random.Random(seed)
        self.default_link = default_link
        self._links: Dict[Tuple[int, int], LinkConfig] = {}
        if isinstance(link_config, LinkConfig):
            self.default_link = link_config
        elif isinstance(link_config, dict):
            self._links = dict(link_config)
        self.refresh_interval = refresh_interval
        self.quiet_period = quiet_period

        self.nodes: List[ProtocolNode] = [
            ProtocolNode(i, network) for i in range(network.n)]
        self._queue: List[_Event] = []
        self._seq = itertools.count()
        self.now = 0.0
        self.step = 0                    #: global activation counter
        self.trace = Trace()
        self._last_change = 0.0
        self._refresh_active = [False] * network.n
        self._fifo_clock: Dict[Tuple[int, int], float] = {}

    # -- plumbing ---------------------------------------------------------

    def link(self, sender: int, receiver: int) -> LinkConfig:
        return self._links.get((sender, receiver), self.default_link)

    def _push(self, time: float, kind: str, payload: tuple) -> None:
        heapq.heappush(self._queue, _Event(time, next(self._seq), kind, payload))

    def _out_neighbours(self, i: int) -> List[int]:
        """Nodes that import from ``i`` (i.e. have an edge (m, i)).

        Reads the adjacency matrix's cached
        :class:`~repro.core.state.NetworkTopology` (via the copying
        accessor, so callers can't corrupt the shared snapshot) —
        O(out-degree) per send instead of a full edge-set scan, and
        automatically fresh after dynamic topology changes (the cache
        is invalidated by ``set_edge`` / ``remove_edge``).
        """
        return self.network.neighbours_out(i)

    # -- sending -------------------------------------------------------------

    def _send_vector(self, sender: int, receiver: int,
                     items: List[Tuple[int, Route, int]]) -> None:
        """Ship ``(dest, route, gen_step)`` announcements over one link
        as a single vector event.

        Loss is drawn per announcement (each destination's announcement
        is still an independent victim, exactly as when they travelled
        separately); the survivors share one delay sample, one FIFO
        slot and one duplication draw — the whole packet is duplicated,
        so ``duplicated`` counts every announcement in the copy.
        """
        cfg = self.link(sender, receiver)
        stats = self.trace.stats
        survivors = []
        for item in items:
            stats.sent += 1
            if self.rng.random() < cfg.loss:
                stats.lost += 1
            else:
                survivors.append(item)
        if not survivors:
            return
        copies = 1
        if self.rng.random() < cfg.duplicate:
            copies = 2
            stats.duplicated += len(survivors)
        payload = tuple(survivors)
        for _ in range(copies):
            delay = cfg.sample_delay(self.rng)
            arrival = self.now + delay
            if cfg.fifo:
                key = (sender, receiver)
                arrival = max(arrival, self._fifo_clock.get(key, 0.0))
                self._fifo_clock[key] = arrival
            self._push(arrival, "deliver", (sender, receiver, payload))

    def _send(self, sender: int, receiver: int, dest: int, route: Route,
              gen_step: int) -> None:
        """Single-announcement convenience wrapper (triggered updates)."""
        self._send_vector(sender, receiver, [(dest, route, gen_step)])

    def _announce(self, node_id: int, dest: int) -> None:
        """Triggered update: tell everyone who imports from us."""
        node = self.nodes[node_id]
        for m in self._out_neighbours(node_id):
            self._send(node_id, m, dest, node.table[dest],
                       node.table_gen[dest])

    def _announce_all(self, node_id: int) -> None:
        """Full-table storm (bootstrap / refresh), one vector per link."""
        node = self.nodes[node_id]
        items = [(dest, node.table[dest], node.table_gen[dest])
                 for dest in range(self.network.n)]
        for m in self._out_neighbours(node_id):
            self._send_vector(node_id, m, items)

    # -- recompute ----------------------------------------------------------------

    def _activate(self, node_id: int, dest: int) -> bool:
        """One activation: recompute an entry; announce if it changed."""
        node = self.nodes[node_id]
        self.step += 1
        changed, new_route, betas = node.recompute(dest)
        self.trace.activations.append(Activation(
            self.now, self.step, node_id, dest,
            tuple(sorted(betas.items())), changed))
        if changed:
            old = node.table[dest]
            node.table[dest] = new_route
            node.table_gen[dest] = self.step
            self.trace.changes.append(TableChange(
                self.now, self.step, node_id, dest, old, new_route))
            self._last_change = self.now
            self._announce(node_id, dest)
            self._ensure_refresh(node_id)
        return changed

    def _ensure_refresh(self, node_id: int) -> None:
        if not self._refresh_active[node_id] and self.refresh_interval > 0:
            self._refresh_active[node_id] = True
            self._push(self.now + self.refresh_interval, "refresh", (node_id,))

    # -- event handlers ----------------------------------------------------------

    def _handle_deliver(self, sender: int, receiver: int,
                        items: Tuple[Tuple[int, Route, int], ...]) -> None:
        """Ingest a vector announcement: cache every destination's
        route first, then recompute each — so a storm's activations all
        see the freshest data (coalescing, not just batching)."""
        node = self.nodes[receiver]
        for dest, route, gen_step in items:
            self.trace.stats.delivered += 1
            node.receive(sender, dest, route, gen_step, self.now)
        for dest, _route, _gen in items:
            self._activate(receiver, dest)

    def _handle_refresh(self, node_id: int) -> None:
        if self.now - self._last_change > self.quiet_period:
            # network is quiet: let the timer lapse (it restarts on change)
            self._refresh_active[node_id] = False
            return
        self._announce_all(node_id)
        self._push(self.now + self.refresh_interval, "refresh", (node_id,))

    # -- stability check ------------------------------------------------------------

    def stability_resolution(self):
        """The negotiated σ-check engine resolution (cached).

        One :class:`~repro.core.capabilities.EngineResolution` per
        simulator: the batched rung declines single stability checks
        (``single-stability-check``), and every other skip — non-finite
        algebra, pool not worthwhile — is recorded in the reason chain
        and logged on the ``repro.engine`` logger instead of happening
        silently.
        """
        if self._resolution is None:
            self._resolution = resolve_engine(
                self.network, self.engine, "stability",
                workers=self.workers)
        return self._resolution

    def _is_sigma_stable(self, state: RoutingState) -> bool:
        """σ-stability of the final table (Definition 4), on the
        negotiated σ-check engine: ``parallel`` runs the check on the
        shared-memory worker pool (auto-closed when the simulator is
        collected), ``vectorized`` runs the table-gather σ, and the
        object engines run the dirty-set scan.  A session-provided
        engine (:meth:`repro.session.RoutingSession.simulate`) is used
        directly and never closed here."""
        resolution = self.stability_resolution()
        rung = resolution.chosen
        if rung in ("naive", "incremental"):
            return is_stable(self.network, state)
        if self._external_engine is not None:
            return self._external_engine.is_stable(state)
        if self._vec_engine is None:
            if rung == "parallel":
                from ..core.parallel import ParallelVectorizedEngine
                self._vec_engine = ParallelVectorizedEngine(
                    self.network, workers=resolution.workers)
            else:
                from ..core.vectorized import VectorizedEngine
                self._vec_engine = VectorizedEngine(self.network)
        return self._vec_engine.is_stable(state)

    def close(self) -> None:
        """Release the σ-check engine.

        Only meaningful for ``engine="parallel"`` (worker processes and
        shared-memory segments); idempotent, and the engine's own
        ``weakref.finalize`` backstop covers simulators that are simply
        dropped.
        """
        eng = self._vec_engine
        if eng is not None and hasattr(eng, "close"):
            eng.close()
            # a closed pool refuses to run; drop the reference so a
            # later run() lazily rebuilds it instead of crashing
            self._vec_engine = None

    # -- running --------------------------------------------------------------------

    def current_state(self) -> RoutingState:
        return RoutingState([node.current_row() for node in self.nodes])

    def load_state(self, state: RoutingState) -> None:
        for i, node in enumerate(self.nodes):
            node.load_state_row(state.row(i))

    def run(self, start: Optional[RoutingState] = None,
            max_time: float = 10_000.0,
            until: Optional[float] = None) -> SimulationResult:
        """Run to quiescence (or ``max_time``; or pause at ``until``).

        With ``until`` the run stops at that simulation time with events
        still queued — used by the dynamic-topology driver to interleave
        changes (Section 3.2).
        """
        if start is not None:
            self.load_state(start)
        if not self._queue:
            self.bootstrap()
        deadline = until if until is not None else max_time
        quiesced = False
        while self._queue:
            event = self._queue[0]
            if event.time > deadline:
                break
            heapq.heappop(self._queue)
            self.now = event.time
            if event.kind == "deliver":
                self._handle_deliver(*event.payload)
            elif event.kind == "refresh":
                self._handle_refresh(*event.payload)
            else:  # pragma: no cover - future event kinds
                raise ValueError(f"unknown event kind {event.kind}")
        if not self._queue:
            quiesced = True
        elif until is None:
            # drained by deadline: drop whatever was still in flight
            quiesced = False
        final = self.current_state()
        return SimulationResult(
            final_state=final,
            converged=self._is_sigma_stable(final),
            quiesced=quiesced,
            sim_time=self.now,
            convergence_time=self.trace.last_change_time,
            trace=self.trace,
        )

    def bootstrap(self) -> None:
        """Initial kick: every node announces its full table and arms
        its refresh timer (with per-node phase jitter)."""
        for i in range(self.network.n):
            self._announce_all(i)
            if self.refresh_interval > 0:
                self._refresh_active[i] = True
                phase = self.rng.uniform(0, self.refresh_interval)
                self._push(self.now + phase, "refresh", (i,))


def simulate(network: Network, start: Optional[RoutingState] = None,
             seed: int = 0, link_config=None,
             refresh_interval: float = 10.0, quiet_period: float = 30.0,
             max_time: float = 10_000.0,
             engine: str = "incremental",
             workers: Optional[int] = None) -> SimulationResult:
    """One-shot convenience wrapper around :class:`Simulator`.

    .. deprecated::
        Thin shim over :meth:`repro.session.RoutingSession.simulate`,
        which negotiates the σ-check engine explicitly and manages its
        lifetime.  Delegates there and emits a
        :class:`DeprecationWarning`; results are bit-identical.
    """
    warn_deprecated("simulate()", "RoutingSession.simulate()")
    from ..session import EngineSpec, RoutingSession
    with RoutingSession(network, EngineSpec(engine, workers=workers)) as s:
        return s.simulate(start, seed=seed, link_config=link_config,
                          refresh_interval=refresh_interval,
                          quiet_period=quiet_period,
                          max_time=max_time).result
