"""Message and link models for the event-driven simulator.

The δ model (Section 3.1) abstracts communication into the data-flow
function β; this package *realises* the abstraction: routes travel as
explicit :class:`Announcement` messages over :class:`Link` channels
that can delay, drop, duplicate and reorder them.  A simulator run
therefore induces some admissible (α, β) — the witness extracted in
:mod:`repro.protocols.trace` — which is exactly the sense in which the
paper's convergence theorems cover real message-passing protocols.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.algebra import Route


@dataclass(frozen=True)
class Announcement:
    """One routing update: ``sender`` tells ``receiver`` its route to ``dest``.

    ``gen_step`` is the sender-side activation step that produced the
    announced route — the raw material for reconstructing β.
    """

    sender: int
    receiver: int
    dest: int
    route: Route
    gen_step: int


@dataclass
class LinkConfig:
    """Channel behaviour for one directed link (sender → receiver).

    * ``min_delay``/``max_delay`` — per-message propagation delay drawn
      uniformly from the interval (reordering arises whenever
      ``max_delay > min_delay`` and FIFO is off);
    * ``loss`` — probability a message is silently dropped;
    * ``duplicate`` — probability a message is delivered twice (the
      second copy with an independent delay);
    * ``fifo`` — enforce in-order delivery (what classical proofs
      assume; the paper's point is that we do NOT need it, so the
      default is off).
    """

    min_delay: float = 0.5
    max_delay: float = 2.0
    loss: float = 0.0
    duplicate: float = 0.0
    fifo: bool = False

    def __post_init__(self):
        if self.min_delay <= 0 or self.max_delay < self.min_delay:
            raise ValueError("need 0 < min_delay <= max_delay")
        if not (0.0 <= self.loss < 1.0):
            raise ValueError("loss must be in [0, 1)")
        if not (0.0 <= self.duplicate <= 1.0):
            raise ValueError("duplicate must be in [0, 1]")

    def sample_delay(self, rng) -> float:
        return rng.uniform(self.min_delay, self.max_delay)


#: A well-behaved channel: modest jitter, no loss or duplication.
RELIABLE = LinkConfig()

#: A hostile channel: heavy jitter, 20% loss, 10% duplication.
HOSTILE = LinkConfig(min_delay=0.2, max_delay=5.0, loss=0.2, duplicate=0.1)
