"""Event-driven message-passing protocol substrate."""

from .dynamics import (
    ChangeScript,
    TopologyChange,
    fail_edge,
    fail_link,
    set_edge,
)
from .messages import HOSTILE, RELIABLE, Announcement, LinkConfig
from .node import CacheEntry, ProtocolNode
from .simulator import SimulationResult, Simulator, simulate
from .trace import Activation, MessageStats, TableChange, Trace

__all__ = [
    "Activation",
    "Announcement",
    "CacheEntry",
    "ChangeScript",
    "HOSTILE",
    "LinkConfig",
    "MessageStats",
    "ProtocolNode",
    "RELIABLE",
    "SimulationResult",
    "Simulator",
    "TableChange",
    "TopologyChange",
    "Trace",
    "fail_edge",
    "fail_link",
    "set_edge",
    "simulate",
]
