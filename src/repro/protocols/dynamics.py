"""Dynamic networks (Section 3.2): topology change as problem re-start.

The paper treats a change at time ``t`` as a *new* problem instance:
new adjacency matrix, starting state = whatever δ had reached.  The
crucial consequence — and the reason Theorems 7/11 demand convergence
from *arbitrary* states — is that the inherited state may contain
**stale routes that no longer correspond to anything in the new
topology** (inconsistent routes, in the Section 5 sense).

:class:`ChangeScript` drives a :class:`~repro.protocols.simulator.Simulator`
through a sequence of scheduled changes, letting experiments inject
link failures, weight changes and policy swaps mid-run and observe
re-convergence.  This is how the TH11/C2I benches manufacture genuinely
inconsistent starting states instead of synthetic ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from ..core.algebra import EdgeFunction
from ..core.state import Network, RoutingState
from .simulator import SimulationResult, Simulator


@dataclass
class TopologyChange:
    """One scheduled mutation of the network at simulation time ``time``.

    ``apply`` receives the live :class:`Network` and mutates it.
    ``description`` feeds logs and traces.
    """

    time: float
    apply: Callable[[Network], None]
    description: str = "change"


def set_edge(i: int, j: int, fn: EdgeFunction, time: float) -> TopologyChange:
    """Install/replace the edge function on ``(i, j)`` at ``time``."""
    return TopologyChange(time, lambda net: net.set_edge(i, j, fn),
                          f"set edge ({i},{j})")


def fail_edge(i: int, j: int, time: float) -> TopologyChange:
    """Remove the edge ``(i, j)`` (it becomes the constant-∞̄ map)."""
    return TopologyChange(time, lambda net: net.remove_edge(i, j),
                          f"fail edge ({i},{j})")


def fail_link(i: int, j: int, time: float) -> List[TopologyChange]:
    """Remove both directions of a link."""
    return [fail_edge(i, j, time), fail_edge(j, i, time)]


class ChangeScript:
    """Run a simulator through a sequence of topology changes.

    After each change every node re-reads its neighbour lists and
    recomputes/re-announces everything — the protocol-level analogue of
    "take δᵗ(X) as the new starting state X′".
    """

    def __init__(self, simulator: Simulator,
                 changes: Sequence[TopologyChange]):
        self.simulator = simulator
        self.changes = sorted(changes, key=lambda c: c.time)
        self.applied: List[TopologyChange] = []

    def run(self, start: Optional[RoutingState] = None,
            max_time: float = 10_000.0) -> SimulationResult:
        sim = self.simulator
        if start is not None:
            sim.load_state(start)
        sim.bootstrap()
        result: Optional[SimulationResult] = None
        for change in self.changes:
            result = sim.run(until=change.time, max_time=max_time)
            sim.now = change.time    # the change happens exactly on time
            change.apply(sim.network)
            self.applied.append(change)
            self._rewire(change)
        result = sim.run(max_time=max_time)
        return result

    def _rewire(self, change: TopologyChange) -> None:
        """Propagate a topology change into node state.

        Every node refreshes its neighbour lists; then every node
        recomputes every destination (its import policies may have
        changed) and re-announces, restarting the refresh timers.
        """
        sim = self.simulator
        for node in sim.nodes:
            node.refresh_neighbour_lists()
        for node_id in range(sim.network.n):
            for dest in range(sim.network.n):
                sim._activate(node_id, dest)
            sim._announce_all(node_id)
            sim._ensure_refresh(node_id)
