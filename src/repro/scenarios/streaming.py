"""Stream a scenario's mutation stream to a live service daemon.

The second replay transport: the same compiled event stream that
:func:`~.survey.replay_events` applies in-process is shipped to a
daemon session through the ``set_edge``/``remove_edge`` verbs —
``set`` mutations travel as their ``edge_seed``, and the daemon
re-derives the identical edge function
(``factory(random.Random(edge_seed), i, k)``).

The helper keeps a *local mirror* network in lockstep (every streamed
mutation is also applied locally) and probes the daemon after each
phase: the served σ digest must equal the mirror's, and — when a
``probe_dest`` is given — the cheap per-destination ``routes`` verb
must slice to the mirror's exact column.  A ``False`` in any
``digest_match``/``routes_match`` field means the transports diverged,
which the tests treat as a hard failure.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from ..session import RoutingSession
from .events import compile_event, event_seed

__all__ = ["stream_events"]


def stream_events(client, session_id: str, mirror: RoutingSession,
                  factory, events: Sequence, *, seed: int = 0,
                  max_rounds: int = 10_000,
                  probe_dest: Optional[int] = None) -> List[Dict[str, Any]]:
    """Replay ``events`` against daemon session ``session_id`` via
    mutation streaming; returns one probe record per phase.

    ``mirror`` is a local session over an identically built network
    (same registry names and seed as the daemon's ``load``); it
    compiles the events, tracks the daemon's topology mutation for
    mutation, and supplies the reference fixed points the daemon's
    replies are checked against.
    """
    from ..service.protocol import state_digest

    records: List[Dict[str, Any]] = []

    def probe(label: str, mutations: int):
        report = mirror.sigma(max_rounds=max_rounds)
        reply = client.sigma(session_id, max_rounds=max_rounds)
        record = {
            "label": label,
            "mutations": mutations,
            "version": reply["version"],
            "rounds": reply["rounds"],
            "cached": bool(reply.get("cached", False)),
            "digest_match": reply["digest"] == state_digest(report.state),
        }
        if probe_dest is not None:
            routes = client.routes(session_id, dest=probe_dest,
                                   max_rounds=max_rounds)
            record["routes_match"] = routes["routes"] == [
                str(r) for r in report.state.column(probe_dest)]
        records.append(record)
        return report.state

    state = probe("initial", 0)
    for idx, event in enumerate(events):
        phases = compile_event(event, mirror.network, factory,
                               event_seed(seed, idx), state=state)
        for phase in phases:
            for m in phase.mutations:
                if m.op == "set":
                    client.set_edge(session_id, m.i, m.k,
                                    edge_seed=int(m.edge_seed))
                else:
                    client.remove_edge(session_id, m.i, m.k)
                m.apply(mirror.network)
            state = probe(phase.label, len(phase.mutations))
    return records
