"""The event grammar: typed reconfiguration events → timed mutation streams.

A scenario is a topology plus a sequence of *events* — the
reconfigurations an operator (or the world) applies to a running
network: ``link-flap``, ``node-failure``, ``link-weight-change``,
``policy-change``, ``del-best-route``.  Each event **compiles** against
the live network (and, for state-dependent events, the current fixed
point) into one or more :class:`EventPhase` objects, each a labelled
batch of :class:`Mutation` records.

Mutations are the bridge between the two replay transports:

* **in-process** — :meth:`repro.session.RoutingSession.replay` applies
  ``mutation.fn`` straight to the shared adjacency (the incremental
  engines see the dirty sets);
* **service streaming** — the daemon's ``set_edge`` verb takes
  ``mutation.edge_seed`` and re-derives the same function as
  ``factory(random.Random(edge_seed), i, k)``.

:func:`compile_event` materialises ``fn`` from ``edge_seed`` with that
*exact* formula, so the two transports are bit-identical by
construction — the property the survey's oracle mode checks end to end.

Semantics note: restorative phases (``link-up``, ``node-up``) draw
*fresh* seeded policies rather than resurrecting the original edge
functions — recovery is re-provisioning, and a fresh draw is the only
thing the seed-based wire protocol can express losslessly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.algebra import EdgeFunction
from ..core.state import Network, RoutingState
from ..topologies.generators import EdgeFactory

__all__ = [
    "EVENTS",
    "DelBestRoute",
    "Event",
    "EventPhase",
    "LinkFlap",
    "LinkWeightChange",
    "Mutation",
    "NodeFailure",
    "PolicyChange",
    "compile_event",
    "event_seed",
]


def event_seed(seed: int, index: int) -> int:
    """The per-event compile seed for event ``index`` of a scenario
    seeded ``seed`` — one shared derivation, so the in-process and
    service-streaming transports replay identical mutation streams."""
    return seed + 7919 * index


@dataclass(frozen=True)
class Mutation:
    """One topology mutation, expressible on both replay transports.

    ``op`` is ``"set"`` or ``"remove"``.  For a set, ``edge_seed`` is
    the wire form (what the daemon's ``set_edge`` verb takes) and
    ``fn`` the in-process form; :func:`compile_event` guarantees
    ``fn == factory(random.Random(edge_seed), i, k)``.
    """

    op: str
    i: int
    k: int
    edge_seed: Optional[int] = None
    fn: Optional[EdgeFunction] = field(default=None, compare=False,
                                       repr=False)

    def apply(self, network: Network) -> None:
        """Apply in-process (the session-replay transport)."""
        if self.op == "set":
            if self.fn is None:
                raise ValueError(
                    f"set mutation ({self.i}, {self.k}) was never "
                    "materialised; compile events through compile_event()")
            network.set_edge(self.i, self.k, self.fn)
        elif self.op == "remove":
            network.remove_edge(self.i, self.k)
        else:
            raise ValueError(f"unknown mutation op {self.op!r}")


@dataclass(frozen=True)
class EventPhase:
    """A labelled batch of mutations applied atomically at ``time``;
    the replay harness measures convergence/churn after each phase."""

    label: str
    time: int
    mutations: Tuple[Mutation, ...]


def _materialise(mutations: Sequence[Mutation],
                 factory: EdgeFactory) -> Tuple[Mutation, ...]:
    """Fill every set-mutation's ``fn`` from its ``edge_seed`` using the
    daemon's exact formula (`daemon._handle_mutation`), the bit-identity
    anchor between transports."""
    out = []
    for m in mutations:
        if m.op == "set" and m.fn is None:
            fn = factory(random.Random(int(m.edge_seed)), m.i, m.k)
            m = Mutation(m.op, m.i, m.k, m.edge_seed, fn)
        out.append(m)
    return tuple(out)


def _seed(rng: random.Random) -> int:
    """A fresh wire-expressible edge seed."""
    return rng.randrange(1 << 31)


def _present_pairs(network: Network) -> List[Tuple[int, int]]:
    """Undirected present pairs (both arcs installed), sorted."""
    arcs = set(network.present_edges())
    return sorted((i, k) for (i, k) in arcs if i < k and (k, i) in arcs)


class Event:
    """Base class: one typed reconfiguration event.

    ``compile(network, rng, state)`` returns the phases this event
    denotes *against the current topology* — structural choices (which
    link, which node) are drawn from ``rng``, so a scenario seed fully
    determines the mutation stream.  ``state`` is the current fixed
    point; only state-dependent events (:class:`DelBestRoute`) read it.
    """

    name = "event"

    def compile(self, network: Network, rng: random.Random,
                state: Optional[RoutingState] = None) -> List[EventPhase]:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


@dataclass(repr=False)
class LinkFlap(Event):
    """Take one bidirectional link down, then bring it back up with
    freshly drawn policies (two phases)."""

    edge: Optional[Tuple[int, int]] = None

    name = "link-flap"

    def compile(self, network, rng, state=None):
        pairs = _present_pairs(network)
        if not pairs:
            raise ValueError(f"{network.name} has no bidirectional link "
                             "to flap")
        i, k = self.edge if self.edge is not None else \
            pairs[rng.randrange(len(pairs))]
        down = (Mutation("remove", i, k), Mutation("remove", k, i))
        up = (Mutation("set", i, k, _seed(rng)),
              Mutation("set", k, i, _seed(rng)))
        return [EventPhase("link-down", 0, down),
                EventPhase("link-up", 1, up)]


@dataclass(repr=False)
class NodeFailure(Event):
    """Fail one node (every incident arc removed), then recover it with
    freshly drawn policies on the same arcs (two phases)."""

    node: Optional[int] = None

    name = "node-failure"

    def compile(self, network, rng, state=None):
        arcs = list(network.present_edges())
        candidates = sorted({i for (i, k) in arcs} | {k for (i, k) in arcs})
        if not candidates:
            raise ValueError(f"{network.name} has no connected node to fail")
        node = self.node if self.node is not None else \
            candidates[rng.randrange(len(candidates))]
        incident = [(i, k) for (i, k) in arcs if i == node or k == node]
        down = tuple(Mutation("remove", i, k) for (i, k) in incident)
        up = tuple(Mutation("set", i, k, _seed(rng)) for (i, k) in incident)
        return [EventPhase("node-down", 0, down),
                EventPhase("node-up", 1, up)]


@dataclass(repr=False)
class LinkWeightChange(Event):
    """Redraw the weight/policy on ``count`` random present arcs
    (one phase) — the classic IGP reweighting event."""

    count: int = 2

    name = "link-weight-change"

    def compile(self, network, rng, state=None):
        arcs = sorted(network.present_edges())
        if not arcs:
            raise ValueError(f"{network.name} has no arc to reweigh")
        chosen = rng.sample(arcs, min(self.count, len(arcs)))
        muts = tuple(Mutation("set", i, k, _seed(rng))
                     for (i, k) in sorted(chosen))
        return [EventPhase("reweigh", 0, muts)]


@dataclass(repr=False)
class PolicyChange(Event):
    """Redraw every import policy of one node (all arcs ``(node, k)``)
    in one phase — an operator shipping a new routing policy."""

    node: Optional[int] = None

    name = "policy-change"

    def compile(self, network, rng, state=None):
        arcs = sorted(network.present_edges())
        importers = sorted({i for (i, _k) in arcs})
        if not importers:
            raise ValueError(f"{network.name} has no importing node")
        node = self.node if self.node is not None else \
            importers[rng.randrange(len(importers))]
        muts = tuple(Mutation("set", i, k, _seed(rng))
                     for (i, k) in arcs if i == node)
        return [EventPhase("policy-change", 0, muts)]


@dataclass(repr=False)
class DelBestRoute(Event):
    """Withdraw one node's best route to a destination by removing the
    arc it arrived through (one phase) — Chameleon's headline event.

    State-dependent: the contributing in-neighbour ``k`` is the one
    whose edge function maps the neighbour's fixed-point route to the
    node's own, found by direct algebraic application against the
    current fixed point (which replay hands in).
    """

    dest: Optional[int] = None

    name = "del-best-route"

    def compile(self, network, rng, state=None):
        if state is None:
            raise ValueError(
                "del-best-route needs the current fixed point; replay it "
                "through compile_event(..., state=...)")
        alg = network.algebra
        n = network.n
        # one rng-shuffled order drives both searches: preferred
        # destinations first, then within a destination the first node
        # holding a real (valid, learned) route to it loses that route.
        # Destinations whose column is all-invalid (reachability bounds
        # can empty one out) fall through to the next candidate.
        order = list(range(n))
        rng.shuffle(order)
        dests = [self.dest] if self.dest is not None else order
        for dest in dests:
            for i in order:
                if i == dest:
                    continue
                best = state.get(i, dest)
                if alg.equal(best, alg.invalid):
                    continue
                for k in network.neighbours_in(i):
                    candidate = network.edge(i, k)(state.get(k, dest))
                    if alg.equal(candidate, best):
                        return [EventPhase(
                            "del-best-route", 0,
                            (Mutation("remove", i, k),))]
        raise ValueError(
            f"{network.name} has no learned route to withdraw "
            f"(destinations tried: {dests})")


#: The event registry: name → zero-argument default-configured factory.
EVENTS: Dict[str, Callable[[], Event]] = {
    "link-flap": LinkFlap,
    "node-failure": NodeFailure,
    "link-weight-change": LinkWeightChange,
    "policy-change": PolicyChange,
    "del-best-route": DelBestRoute,
}


def compile_event(event: Event, network: Network, factory: EdgeFactory,
                  seed: int, state: Optional[RoutingState] = None
                  ) -> List[EventPhase]:
    """Compile ``event`` against the live ``network`` into materialised
    phases: structural choices drawn from ``random.Random(seed)``, and
    every set-mutation's in-process ``fn`` derived from its
    ``edge_seed`` with the daemon's exact formula."""
    rng = random.Random(seed)
    phases = event.compile(network, rng, state)
    return [EventPhase(ph.label, ph.time,
                       _materialise(ph.mutations, factory))
            for ph in phases]
