"""The scenario registry: named topologies × events × algebras.

One lookup surface for everything the scenario harness can drive:

* **topologies** — every committed corpus fixture (as
  ``corpus:<name>``) plus the generated families that matter for
  scenario work (Elmokashfi AS graphs, iBGP route-reflector overlays,
  a small fat-tree);
* **events** — the typed event grammar of :mod:`.events`;
* **algebras** — the CLI's algebra registry, re-exported so scenario
  cells and service loads name algebras identically.

Builders are algebra-agnostic closures ``(algebra, factory, seed) ->
Network``; :func:`build_scenario_network` resolves names end to end
(with loud ``ValueError``s listing the choices, mirroring the CLI).
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from ..core.algebra import RoutingAlgebra
from ..core.state import Network
from ..topologies.generators import (
    EdgeFactory,
    elmokashfi_as_graph,
    fat_tree,
    route_reflector_hierarchy,
)
from .corpus import CorpusTopology, list_corpus, load_corpus_topology
from .events import EVENTS, Event

__all__ = [
    "TopologyBuilder",
    "build_scenario_network",
    "scenario_algebras",
    "scenario_events",
    "scenario_topologies",
]

TopologyBuilder = Callable[[RoutingAlgebra, EdgeFactory, int], Network]


def _corpus_builder(name: str) -> TopologyBuilder:
    def build(algebra, factory, seed=0):
        topo: CorpusTopology = load_corpus_topology(name)
        return topo.build(algebra, factory, seed=seed)

    return build


def scenario_topologies() -> Dict[str, TopologyBuilder]:
    """Name → ``(algebra, factory, seed) -> Network`` builders: the
    committed corpus plus the scenario-relevant generated families."""
    out: Dict[str, TopologyBuilder] = {
        f"corpus:{name}": _corpus_builder(name) for name in list_corpus()}
    out["elmokashfi-24"] = lambda alg, fac, seed=0: \
        elmokashfi_as_graph(alg, 24, fac, seed=seed)
    out["route-reflector"] = lambda alg, fac, seed=0: \
        route_reflector_hierarchy(alg, fac, seed=seed)
    out["fat-tree-4"] = lambda alg, fac, seed=0: \
        fat_tree(alg, 4, fac, seed=seed)
    return out


def scenario_events() -> Dict[str, Callable[[], Event]]:
    """Name → default-configured event factory (:data:`.events.EVENTS`)."""
    return dict(EVENTS)


def scenario_algebras() -> Dict[str, Callable]:
    """Name → CLI algebra entry (lazy import: the CLI imports this
    package for its ``scenarios`` subcommand)."""
    from ..cli import ALGEBRAS
    return dict(ALGEBRAS)


def build_scenario_network(topology: str, algebra: str,
                           seed: int = 0) -> Tuple[Network, EdgeFactory]:
    """Resolve registry names into ``(network, edge_factory)``.

    The factory is returned alongside the network because both replay
    transports need it: in-process compilation materialises mutations
    through it, and the daemon re-derives ``set_edge`` functions from
    it by seed.
    """
    algebras = scenario_algebras()
    if algebra not in algebras:
        raise ValueError(f"unknown algebra {algebra!r}; choose from "
                         f"{sorted(algebras)}")
    topologies = scenario_topologies()
    if topology not in topologies:
        raise ValueError(f"unknown scenario topology {topology!r}; choose "
                         f"from {sorted(topologies)}")
    alg, factory, _finite, _is_path = algebras[algebra]()
    return topologies[topology](alg, factory, seed), factory
