"""Scenario surveys: (topology × event × algebra) grids, oracle-checked.

One *cell* of a survey replays one event's mutation stream on one
topology under one algebra — measuring per-phase re-convergence and
churn through :meth:`~repro.session.RoutingSession.replay` — and then
runs a small (schedule × start) δ trial grid on the post-event topology
through the session's negotiated grid rung (the batched tensor engine
on finite algebras).

``oracle=True`` re-runs the whole cell on a second, independently built
network with the engine pinned *below* the batched rung and requires
bit-identical answers: every replay phase (rounds, churn, fixed point)
and every grid trial (``converged``/``converged_at``/state) must match.
That is the acceptance property — the batched grid results are the
per-trial session replay, exactly.

A failed cell never aborts the survey: it renders as ``FAIL`` in the
table, counts into ``report.failed``, and drives the CLI's nonzero
exit — the contract the CI ``scenario-survey`` job gates on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from time import perf_counter
from typing import Callable, List, Optional, Sequence, Tuple

from ..core.asynchronous import random_state
from ..core.schedule import RandomSchedule
from ..session import EngineSpec, ReplayReport, RoutingSession
from .events import compile_event, event_seed
from .registry import build_scenario_network, scenario_events

__all__ = [
    "CellResult",
    "DEFAULT_ALGEBRAS",
    "DEFAULT_EVENTS",
    "SurveyReport",
    "replay_events",
    "run_cell",
    "run_survey",
]

#: Default survey algebras: both finite, so the trial grids negotiate
#: the batched tensor rung (the point of the survey machine).
DEFAULT_ALGEBRAS: Tuple[str, ...] = ("hop-count", "stratified-bounded")

DEFAULT_EVENTS: Tuple[str, ...] = (
    "link-flap", "node-failure", "link-weight-change", "policy-change",
    "del-best-route")


def replay_events(session: RoutingSession, events: Sequence, factory, *,
                  seed: int = 0, max_rounds: int = 10_000,
                  measure_churn: bool = True) -> ReplayReport:
    """Replay ``events`` through ``session`` with lazy compilation:
    each event compiles against the topology and fixed point left by
    its predecessors, seeded by :func:`~.events.event_seed`."""
    items = []
    for idx, ev in enumerate(events):
        items.append(lambda net, st, _ev=ev, _s=event_seed(seed, idx):
                     compile_event(_ev, net, factory, _s, state=st))
    return session.replay(items, max_rounds=max_rounds,
                          measure_churn=measure_churn)


@dataclass
class CellResult:
    """One survey cell's outcome (or its failure)."""

    topology: str
    event: str
    algebra: str
    n: int = 0
    phases: int = 0
    replay_converged: bool = False
    total_churn: int = 0
    total_rounds: int = 0
    grid_runs: int = 0
    grid_all_converged: bool = False
    distinct_fixed_points: int = 0
    grid_engine: str = ""
    oracle_checked: bool = False
    oracle_ok: bool = False
    elapsed_s: float = 0.0
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return (self.error is None and self.replay_converged
                and self.grid_all_converged
                and (self.oracle_ok or not self.oracle_checked))


def _grid_trials(algebra, n: int, seed: int, trials: int):
    """The cell's δ trial grid: seeded random schedules × seeded
    Theorem 7/11 arbitrary starts (deterministic, transport-free)."""
    return [(RandomSchedule(n, seed=seed + 101 * t),
             random_state(algebra, n, random.Random(seed + 211 * t)))
            for t in range(trials)]


def run_cell(topology: str, event: str, algebra: str, *, seed: int = 0,
             trials: int = 4, oracle: bool = False, engine: str = "auto",
             max_steps: int = 2_000) -> CellResult:
    """Run one survey cell; raises on broken configuration (the survey
    loop catches and records — see :func:`run_survey`)."""
    t0 = perf_counter()
    events = [scenario_events()[event]()]
    net, factory = build_scenario_network(topology, algebra, seed=seed)
    alg = net.algebra
    with RoutingSession(net, EngineSpec(engine)) as session:
        replay = replay_events(session, events, factory, seed=seed)
        trial_list = _grid_trials(alg, net.n, seed, trials)
        grid = session.delta_grid(trial_list, max_steps=max_steps,
                                  keep_results=oracle)
    oracle_ok = True
    if oracle:
        # independent rebuild, engine pinned below the batched rung:
        # the per-trial session replay the batched grid must equal.
        net2, factory2 = build_scenario_network(topology, algebra,
                                                seed=seed)
        with RoutingSession(net2, EngineSpec("vectorized")) as ref:
            replay2 = replay_events(
                ref, [scenario_events()[event]()], factory2, seed=seed)
            oracle_ok = _replays_agree(replay, replay2, alg)
            for (sched, start), res in zip(trial_list, grid.results or []):
                single = ref.delta(sched, start, max_steps=max_steps)
                oracle_ok = oracle_ok and (
                    single.converged == res.converged
                    and (single.converged_at or single.steps)
                        == (res.converged_at or res.steps)
                    and single.state.equals(res.state, alg))
    return CellResult(
        topology=topology, event=event, algebra=algebra, n=net.n,
        phases=replay.phases, replay_converged=replay.all_converged,
        total_churn=replay.total_churn, total_rounds=replay.total_rounds,
        grid_runs=grid.runs, grid_all_converged=grid.all_converged,
        distinct_fixed_points=len(grid.distinct_fixed_points),
        grid_engine=grid.resolution.chosen, oracle_checked=oracle,
        oracle_ok=oracle_ok, elapsed_s=perf_counter() - t0)


def _replays_agree(a: ReplayReport, b: ReplayReport, algebra) -> bool:
    """Phase-for-phase bit-identity of two replay transcripts."""
    if len(a.steps) != len(b.steps):
        return False
    for sa, sb in zip(a.steps, b.steps):
        if (sa.label, sa.mutations, sa.converged, sa.rounds, sa.churn) != \
                (sb.label, sb.mutations, sb.converged, sb.rounds, sb.churn):
            return False
        if not sa.state.equals(sb.state, algebra):
            return False
    return True


@dataclass
class SurveyReport:
    """A full survey grid: cells, failures, and the rendered table."""

    cells: List[CellResult]
    algebras: Tuple[str, ...]
    oracle: bool
    elapsed_s: float

    @property
    def failed(self) -> List[CellResult]:
        return [c for c in self.cells if not c.ok]

    def render_table(self) -> str:
        by_key = {(c.topology, c.event, c.algebra): c for c in self.cells}
        rows_keys = []
        for c in self.cells:
            key = (c.topology, c.event)
            if key not in rows_keys:
                rows_keys.append(key)

        def cell_text(c: Optional[CellResult]) -> str:
            if c is None:
                return "-"
            if not c.ok:
                return f"FAIL[{c.error or 'mismatch'}]"
            mark = "ok*" if c.oracle_checked else "ok"
            return f"{mark} ch={c.total_churn} r={c.total_rounds}"

        w_topo = max([len("topology")] + [len(t) for (t, _e) in rows_keys])
        w_event = max([len("event")] + [len(e) for (_t, e) in rows_keys])
        widths = []
        for alg in self.algebras:
            cells = [cell_text(by_key.get((t, e, alg)))
                     for (t, e) in rows_keys]
            widths.append(max([len(alg)] + [len(x) for x in cells]))
        lines = ["  ".join(
            [f"{'topology':<{w_topo}}", f"{'event':<{w_event}}"]
            + [f"{alg:<{w}}" for alg, w in zip(self.algebras, widths)])]
        for (topo, ev) in rows_keys:
            parts = [f"{topo:<{w_topo}}", f"{ev:<{w_event}}"]
            for alg, w in zip(self.algebras, widths):
                parts.append(
                    f"{cell_text(by_key.get((topo, ev, alg))):<{w}}")
            lines.append("  ".join(parts).rstrip())
        lines.append("")
        checked = sum(1 for c in self.cells if c.oracle_checked)
        lines.append(
            f"cells: {len(self.cells)}   failed: {len(self.failed)}   "
            f"oracle-checked: {checked}   elapsed: {self.elapsed_s:.1f}s")
        if self.oracle:
            lines.append("ok* = batched grid bit-identical to per-trial "
                         "session replay")
        return "\n".join(lines)


def run_survey(topologies: Optional[Sequence[str]] = None,
               events: Optional[Sequence[str]] = None,
               algebras: Optional[Sequence[str]] = None, *,
               seed: int = 0, trials: int = 4, oracle: bool = False,
               engine: str = "auto", max_steps: int = 2_000,
               progress: Optional[Callable[[CellResult], None]] = None
               ) -> SurveyReport:
    """Run the (topology × event × algebra) grid; a broken cell is
    recorded as a ``FAIL`` cell, never an aborted survey."""
    from .registry import scenario_topologies
    t0 = perf_counter()
    topologies = list(topologies) if topologies else \
        sorted(scenario_topologies())
    events = list(events) if events else list(DEFAULT_EVENTS)
    algebras = tuple(algebras) if algebras else DEFAULT_ALGEBRAS
    cells: List[CellResult] = []
    for topo in topologies:
        for ev in events:
            for alg in algebras:
                try:
                    cell = run_cell(topo, ev, alg, seed=seed,
                                    trials=trials, oracle=oracle,
                                    engine=engine, max_steps=max_steps)
                except Exception as exc:
                    cell = CellResult(topology=topo, event=ev, algebra=alg,
                                      error=f"{type(exc).__name__}: {exc}")
                cells.append(cell)
                if progress is not None:
                    progress(cell)
    return SurveyReport(cells=cells, algebras=algebras, oracle=oracle,
                        elapsed_s=perf_counter() - t0)
