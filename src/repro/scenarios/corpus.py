"""Topology corpus loader: TopologyZoo-style GraphML and edge-list files.

Chameleon's SIGCOMM artifact evaluates 106 TopologyZoo topologies ×
events × specifications; this module gives the repo the same raw
material without a network dependency: stdlib-only parsers for the two
file formats TopologyZoo ships (GraphML and plain edge lists), plus a
committed fixture set under ``scenarios/corpus/`` so CI runs the whole
grid offline.

The loader is deliberately loud: a malformed file raises a typed
:class:`CorpusFormatError` naming the file and line — never a bare
``KeyError``/``IndexError`` — because a survey that silently skips a
truncated topology reads as "covered everything" when it didn't.

A parsed file is a :class:`CorpusTopology`: named nodes, a deduplicated
directed arc list (undirected inputs are symmetrised), and a
:meth:`CorpusTopology.build` hook that assembles a
:class:`~repro.core.state.Network` through any algebra's edge factory —
corpus files carry *structure only*; weights/policies are drawn by the
factory exactly as the generated families do.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple
from xml.parsers import expat

from ..core.algebra import RoutingAlgebra
from ..core.state import Network
from ..topologies.generators import EdgeFactory, build_network

__all__ = [
    "CorpusFormatError",
    "CorpusTopology",
    "corpus_dir",
    "list_corpus",
    "load_corpus_topology",
    "load_topology",
    "parse_edge_list",
    "parse_graphml",
]


class CorpusFormatError(ValueError):
    """A malformed corpus file, pinpointed to ``path:line``.

    Every parser failure mode — bad XML, missing attributes, undeclared
    endpoints, self-loops, empty graphs, short edge-list lines — raises
    this with the offending file and (when known) line number, so a
    broken fixture is diagnosable from the message alone.
    """

    def __init__(self, path, line: Optional[int], message: str):
        self.path = str(path)
        self.line = line
        where = f"{self.path}:{line}" if line is not None else self.path
        super().__init__(f"{where}: {message}")
        self.reason = message


@dataclass(frozen=True)
class CorpusTopology:
    """One parsed corpus file: structure only, algebra-agnostic.

    ``arcs`` is the deduplicated *directed* arc list (sorted; undirected
    source formats contribute both directions), ``node_names`` the
    display names in dense-index order.
    """

    name: str
    node_names: Tuple[str, ...]
    arcs: Tuple[Tuple[int, int], ...]
    path: Optional[str] = None

    @property
    def n(self) -> int:
        return len(self.node_names)

    @property
    def edges(self) -> int:
        """Undirected edge count (half the arc count by construction)."""
        return len(self.arcs) // 2

    def build(self, algebra: RoutingAlgebra, factory: EdgeFactory,
              seed: int = 0) -> Network:
        """Assemble a network over this structure via ``factory``
        (deterministic in ``seed``, exactly as the generated families)."""
        return build_network(algebra, self.n, self.arcs, factory, seed,
                             name=f"corpus-{self.name}")


# ----------------------------------------------------------------------
# GraphML (expat-based, so semantic errors carry line numbers)
# ----------------------------------------------------------------------


class _GraphMLBuilder:
    """Streaming GraphML reader for the TopologyZoo subset: ``<graph>``
    with ``edgedefault``, ``<node id=...>`` (optionally carrying a
    string ``label`` ``<data>``), ``<edge source=... target=...>``."""

    def __init__(self, path):
        self.path = path
        self.parser = expat.ParserCreate()
        self.parser.StartElementHandler = self._start
        self.parser.EndElementHandler = self._end
        self.parser.CharacterDataHandler = self._chars
        self.directed = False
        self.node_ids: List[str] = []
        self.index: Dict[str, int] = {}
        self.labels: Dict[int, str] = {}
        self.arcs: Set[Tuple[int, int]] = set()
        self.label_keys: Set[str] = set()
        self._current_node: Optional[int] = None
        self._label_buf: Optional[List[str]] = None

    def _fail(self, message: str) -> None:
        raise CorpusFormatError(self.path, self.parser.CurrentLineNumber,
                                message)

    @staticmethod
    def _local(tag: str) -> str:
        return tag.rsplit(":", 1)[-1]

    def _start(self, tag: str, attrs: Dict[str, str]) -> None:
        tag = self._local(tag)
        if tag == "graph":
            self.directed = attrs.get("edgedefault", "") == "directed"
        elif tag == "key":
            if attrs.get("attr.name") == "label" and \
                    attrs.get("for", "node") == "node" and "id" in attrs:
                self.label_keys.add(attrs["id"])
        elif tag == "node":
            nid = attrs.get("id")
            if nid is None:
                self._fail("<node> element missing its 'id' attribute")
            if nid in self.index:
                self._fail(f"duplicate node id {nid!r}")
            self.index[nid] = len(self.node_ids)
            self._current_node = len(self.node_ids)
            self.node_ids.append(nid)
        elif tag == "edge":
            src, dst = attrs.get("source"), attrs.get("target")
            if src is None or dst is None:
                self._fail("<edge> element missing 'source'/'target'")
            for endpoint in (src, dst):
                if endpoint not in self.index:
                    self._fail(
                        f"edge references undeclared node {endpoint!r} "
                        "(nodes must be declared before edges)")
            a, b = self.index[src], self.index[dst]
            if a == b:
                self._fail(f"self-loop on node {src!r}")
            self.arcs.add((a, b))
            if not self.directed:
                self.arcs.add((b, a))
        elif tag == "data":
            if self._current_node is not None and \
                    attrs.get("key") in self.label_keys:
                self._label_buf = []

    def _chars(self, data: str) -> None:
        if self._label_buf is not None:
            self._label_buf.append(data)

    def _end(self, tag: str) -> None:
        tag = self._local(tag)
        if tag == "data" and self._label_buf is not None:
            label = "".join(self._label_buf).strip()
            if label and self._current_node is not None:
                self.labels[self._current_node] = label
            self._label_buf = None
        elif tag == "node":
            self._current_node = None


def parse_graphml(path) -> CorpusTopology:
    """Parse a TopologyZoo-style GraphML file into a
    :class:`CorpusTopology`; raises :class:`CorpusFormatError` (with
    file + line) on malformed XML or semantic errors."""
    path = pathlib.Path(path)
    builder = _GraphMLBuilder(path)
    try:
        with open(path, "rb") as fh:
            builder.parser.ParseFile(fh)
    except expat.ExpatError as exc:
        raise CorpusFormatError(
            path, exc.lineno,
            f"not well-formed GraphML: {expat.errors.messages[exc.code]}"
        ) from None
    if len(builder.node_ids) < 2:
        raise CorpusFormatError(
            path, None, "graph declares fewer than two nodes")
    if not builder.arcs:
        raise CorpusFormatError(path, None, "graph declares no edges")
    names = tuple(builder.labels.get(i, nid)
                  for i, nid in enumerate(builder.node_ids))
    return CorpusTopology(name=path.stem, node_names=names,
                          arcs=tuple(sorted(builder.arcs)), path=str(path))


# ----------------------------------------------------------------------
# Edge lists
# ----------------------------------------------------------------------


def parse_edge_list(path) -> CorpusTopology:
    """Parse a whitespace-separated edge list (``SRC DST`` per line,
    ``#`` comments, arbitrary string node labels, undirected) into a
    :class:`CorpusTopology`; raises :class:`CorpusFormatError` with
    file + line on short lines and self-loops.

    Extra columns (TopologyZoo exports sometimes append link metadata)
    are ignored; repeated links are deduplicated — both documented
    properties of real zoo files, not errors.
    """
    path = pathlib.Path(path)
    names: List[str] = []
    index: Dict[str, int] = {}
    arcs: Set[Tuple[int, int]] = set()

    def intern(label: str) -> int:
        idx = index.get(label)
        if idx is None:
            idx = index[label] = len(names)
            names.append(label)
        return idx

    with open(path, "r", encoding="utf-8") as fh:
        for lineno, raw in enumerate(fh, 1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            tokens = line.split()
            if len(tokens) < 2:
                raise CorpusFormatError(
                    path, lineno,
                    f"expected 'SRC DST [metadata...]', got {line!r}")
            a, b = tokens[0], tokens[1]
            if a == b:
                raise CorpusFormatError(
                    path, lineno, f"self-loop on node {a!r}")
            ia, ib = intern(a), intern(b)
            arcs.add((ia, ib))
            arcs.add((ib, ia))
    if len(names) < 2 or not arcs:
        raise CorpusFormatError(path, None, "no edges found")
    return CorpusTopology(name=path.stem, node_names=tuple(names),
                          arcs=tuple(sorted(arcs)), path=str(path))


# ----------------------------------------------------------------------
# The committed fixture set
# ----------------------------------------------------------------------

_SUFFIXES = {".graphml": parse_graphml, ".edges": parse_edge_list,
             ".edgelist": parse_edge_list, ".txt": parse_edge_list}


def load_topology(path) -> CorpusTopology:
    """Parse one corpus file, dispatching on its suffix."""
    path = pathlib.Path(path)
    parser = _SUFFIXES.get(path.suffix.lower())
    if parser is None:
        raise CorpusFormatError(
            path, None,
            f"unsupported corpus suffix {path.suffix!r}; expected one of "
            f"{sorted(_SUFFIXES)}")
    return parser(path)


def corpus_dir() -> pathlib.Path:
    """The committed fixture directory (``src/repro/scenarios/corpus/``)."""
    return pathlib.Path(__file__).resolve().parent / "corpus"


def list_corpus(directory=None) -> List[str]:
    """Sorted names of the corpus topologies under ``directory``
    (default: the committed fixture set)."""
    root = pathlib.Path(directory) if directory else corpus_dir()
    return sorted(p.stem for p in root.iterdir()
                  if p.suffix.lower() in _SUFFIXES)


def load_corpus_topology(name: str, directory=None) -> CorpusTopology:
    """Load a corpus topology by name (file stem) from ``directory``
    (default: the committed fixture set)."""
    root = pathlib.Path(directory) if directory else corpus_dir()
    for suffix in _SUFFIXES:
        candidate = root / f"{name}{suffix}"
        if candidate.exists():
            return load_topology(candidate)
    raise ValueError(
        f"unknown corpus topology {name!r}; choose from "
        f"{list_corpus(root)}")
