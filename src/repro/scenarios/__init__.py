"""repro.scenarios — topology corpus + event-grammar reconfiguration harness.

The scenario subsystem turns the engine ladder into a reconfiguration
test bench:

* :mod:`.corpus` — stdlib-only GraphML / edge-list loaders over the
  committed ``corpus/`` fixture set (TopologyZoo-style research
  networks, offline-safe for CI);
* :mod:`.events` — the typed event grammar (``link-flap``,
  ``node-failure``, ``link-weight-change``, ``policy-change``,
  ``del-best-route``) compiled into timed mutation streams;
* :mod:`.registry` — named (topology × event × algebra) lookup;
* :mod:`.survey` — grid runs through the batched engine with the
  per-trial session-replay oracle;
* :mod:`.streaming` — the service transport: the same mutation streams
  shipped to a live daemon via ``set_edge``/``remove_edge``.
"""

from .corpus import (
    CorpusFormatError,
    CorpusTopology,
    corpus_dir,
    list_corpus,
    load_corpus_topology,
    load_topology,
    parse_edge_list,
    parse_graphml,
)
from .events import (
    EVENTS,
    DelBestRoute,
    Event,
    EventPhase,
    LinkFlap,
    LinkWeightChange,
    Mutation,
    NodeFailure,
    PolicyChange,
    compile_event,
    event_seed,
)
from .registry import (
    build_scenario_network,
    scenario_algebras,
    scenario_events,
    scenario_topologies,
)
from .streaming import stream_events
from .survey import (
    DEFAULT_ALGEBRAS,
    DEFAULT_EVENTS,
    CellResult,
    SurveyReport,
    replay_events,
    run_cell,
    run_survey,
)

__all__ = [
    "CellResult",
    "CorpusFormatError",
    "CorpusTopology",
    "DEFAULT_ALGEBRAS",
    "DEFAULT_EVENTS",
    "DelBestRoute",
    "EVENTS",
    "Event",
    "EventPhase",
    "LinkFlap",
    "LinkWeightChange",
    "Mutation",
    "NodeFailure",
    "PolicyChange",
    "SurveyReport",
    "build_scenario_network",
    "compile_event",
    "corpus_dir",
    "event_seed",
    "list_corpus",
    "load_corpus_topology",
    "load_topology",
    "parse_edge_list",
    "parse_graphml",
    "replay_events",
    "run_cell",
    "run_survey",
    "scenario_algebras",
    "scenario_events",
    "scenario_topologies",
    "stream_events",
]
