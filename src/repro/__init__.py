"""repro — a routing-algebra library reproducing Daggitt, Gurney & Griffin,
"Asynchronous Convergence of Policy-Rich Distributed Bellman-Ford Routing
Protocols" (SIGCOMM 2018).

Public API lives in the subpackages:

* :mod:`repro.core`       — algebras, σ, schedules, δ, ultrametrics, paths
* :mod:`repro.algebras`   — concrete algebras (Table 2, RIP, BGPLite, ...)
* :mod:`repro.verification` — executable Table 1 law checking
* :mod:`repro.protocols`  — event-driven message-passing simulator
* :mod:`repro.topologies` — generators and the gadget zoo
* :mod:`repro.analysis`   — fixed points, wedgies, convergence rates
"""

__version__ = "1.0.0"
