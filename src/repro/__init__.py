"""repro — a routing-algebra library reproducing Daggitt, Gurney & Griffin,
"Asynchronous Convergence of Policy-Rich Distributed Bellman-Ford Routing
Protocols" (SIGCOMM 2018).

The one public entry point is the session facade:

* :mod:`repro.session`    — :class:`~repro.session.RoutingSession` +
  :class:`~repro.session.EngineSpec`: capability-negotiated engine
  resolution, managed pools/shared memory, typed run reports

Machinery lives in the subpackages:

* :mod:`repro.core`       — algebras, σ, schedules, δ, ultrametrics, paths
* :mod:`repro.algebras`   — concrete algebras (Table 2, RIP, BGPLite, ...)
* :mod:`repro.verification` — executable Table 1 law checking
* :mod:`repro.protocols`  — event-driven message-passing simulator
* :mod:`repro.topologies` — generators and the gadget zoo
* :mod:`repro.analysis`   — fixed points, wedgies, convergence rates

``from repro import RoutingSession, EngineSpec`` works lazily, so a bare
``import repro`` stays import-cost-free.
"""

__version__ = "1.1.0"

#: session-facade names re-exported lazily from :mod:`repro.session`
_SESSION_EXPORTS = frozenset({
    "RoutingSession", "EngineSpec", "SigmaReport", "DeltaReport",
    "GridReport", "ConvergenceReport", "SimulationReport",
})


def __getattr__(name):
    if name in _SESSION_EXPORTS:
        from . import session
        return getattr(session, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
